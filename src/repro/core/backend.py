"""The NOMAD back-end hardware (paper Section III-D).

The back-end owns data management for the OS-managed DRAM cache:

* an **interface register** through which the front-end offloads
  cache-fill and writeback commands -- the OS can only send a command
  when a PCSHR is available, so a saturated PCSHR file back-pressures
  the tag miss handler (the contention Figs. 12-14 sweep);
* the **PCSHR file** executing page copies concurrently, each staged
  through a **page copy buffer**, sub-block by sub-block, with
  critical-data-first scheduling;
* **data-hit verification**: every DC access compares its CFN against
  the PCSHR tags.  No match means the whole page is resident (data hit);
  a match is a data miss, serviced from the page copy buffer when the
  demanded sub-block has arrived, or parked in a sub-entry until it does.

Cache fills read 64 sub-blocks from off-package DDR into the buffer and
drain the buffer into the DRAM cache; writebacks do the reverse.  Read
transfers are issued when the copy launches (so every sub-block's
buffer-arrival time is fixed then); the drain into the destination
device is issued when the last sub-block arrives, which keeps the
destination bus free for demand traffic in the meantime.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Dict, List, Optional

from repro.common.types import (
    PAGE_SIZE,
    SUB_BLOCKS_PER_PAGE,
    TrafficClass,
)
from repro.config.schemes import NomadConfig
from repro.core.frontend import DataManager
from repro.core.page_copy_buffer import PageCopyBufferPool
from repro.core.pcshr import CommandType, PCSHR
from repro.dram.device import DRAMDevice
from repro.engine.simulator import Component, Simulator


class Backend(Component, DataManager):
    """One back-end: interface + PCSHR file + page copy buffers."""

    # Telemetry tracer hook (repro.telemetry); instance attr when armed.
    _tel = None

    def __init__(
        self,
        sim: Simulator,
        cfg: NomadConfig,
        hbm: DRAMDevice,
        ddr: DRAMDevice,
        name: str = "backend",
        num_pcshrs: Optional[int] = None,
        num_buffers: Optional[int] = None,
    ):
        Component.__init__(self, sim, name)
        self.cfg = cfg
        self.hbm = hbm
        self.ddr = ddr
        n = num_pcshrs if num_pcshrs is not None else cfg.num_pcshrs
        m = num_buffers if num_buffers is not None else min(
            n, cfg.resolved_copy_buffers()
        )
        self.pcshrs = [PCSHR(i, cfg.sub_entries_per_pcshr) for i in range(n)]
        self._free: deque = deque(self.pcshrs)
        self._by_cfn: Dict[int, PCSHR] = {}
        # probe() runs on every DC access; the dict is never rebound, so
        # the instance attribute shadows the method (kept below as the
        # documented contract) with a single bound dict lookup.
        self.probe = self._by_cfn.get
        self.buffers = PageCopyBufferPool(sim, m)
        self._cmd_waiters: deque = deque()

        self._fill_cmds = self.stats.counter("fill_commands")
        self._wb_cmds = self.stats.counter("writeback_commands")
        self._cmd_wait = self.stats.mean("command_wait")
        self._data_hits = self.stats.counter("data_hits")
        self._data_misses = self.stats.counter("data_misses")
        self._buffer_hits = self.stats.counter("buffer_hits")
        self._buffer_write_merges = self.stats.counter("buffer_write_merges")
        self._sub_entry_waits = self.stats.counter("sub_entry_waits")

    # ------------------------------------------------------------------
    # DataManager interface (commands from the front-end)
    # ------------------------------------------------------------------

    def fill(
        self,
        cfn: int,
        pfn: int,
        sub_block: int,
        on_offloaded: Callable[[], None],
        on_resume: Callable[[int], None],
    ) -> None:
        def _accepted() -> None:
            on_offloaded()
            # Non-blocking: the thread resumes as soon as the command is
            # in a PCSHR; the copy proceeds in the background.
            on_resume(self.sim.now)

        self._send(CommandType.CACHE_FILL, pfn, cfn, sub_block, _accepted)

    def writeback(
        self, cfn: int, pfn: int, on_offloaded: Callable[[], None]
    ) -> None:
        self._send(CommandType.WRITEBACK, pfn, cfn, None, on_offloaded)

    def frame_busy(self, cfn: int) -> bool:
        entry = self._by_cfn.get(cfn)
        return entry is not None and entry.cmd_type == CommandType.CACHE_FILL

    # ------------------------------------------------------------------
    # Interface register / command admission
    # ------------------------------------------------------------------

    @property
    def interface_busy(self) -> bool:
        """The S bit: busy while no PCSHR can take the next command."""
        return not self._free or bool(self._cmd_waiters)

    def _send(
        self,
        cmd_type: CommandType,
        pfn: int,
        cfn: int,
        sub_block: Optional[int],
        accepted: Callable[[], None],
    ) -> None:
        arrival = self.sim.now
        self._cmd_waiters.append((cmd_type, pfn, cfn, sub_block, accepted, arrival))
        self._drain_commands()

    def _drain_commands(self) -> None:
        """Admit queued commands FIFO while PCSHRs (and CFNs) allow."""
        while self._cmd_waiters:
            cmd_type, pfn, cfn, sub, accepted, arrival = self._cmd_waiters[0]
            if not self._free or cfn in self._by_cfn:
                return
            self._cmd_waiters.popleft()
            self._cmd_wait.add(self.sim.now - arrival)
            self._allocate(cmd_type, pfn, cfn, sub)
            accepted()

    def _allocate(
        self, cmd_type: CommandType, pfn: int, cfn: int, sub: Optional[int]
    ) -> None:
        pcshr = self._free.popleft()
        pcshr.allocate(cmd_type, pfn, cfn, sub, self.sim.now)
        self._by_cfn[cfn] = pcshr
        if cmd_type == CommandType.CACHE_FILL:
            self._fill_cmds.inc()
        else:
            self._wb_cmds.inc()
        if self._tel is not None:
            self._tel.copy_begin(
                (self.name, pcshr.index),
                "fill" if cmd_type == CommandType.CACHE_FILL else "writeback",
                self.sim.now,
                {"cfn": cfn, "pfn": pfn, "pcshr": pcshr.index,
                 "backend": self.name},
            )
        self.buffers.acquire(lambda p=pcshr: self._launch(p))

    # ------------------------------------------------------------------
    # Page copy execution
    # ------------------------------------------------------------------

    def _launch(self, pcshr: PCSHR) -> None:
        """Issue all read transfers; fix the buffer-arrival schedule."""
        order = pcshr.transfer_order(self.cfg.critical_data_first)
        arrivals = [0] * SUB_BLOCKS_PER_PAGE
        if pcshr.cmd_type == CommandType.CACHE_FILL:
            src, base, tc = self.ddr, pcshr.pfn * PAGE_SIZE, TrafficClass.FILL
        else:
            src, base, tc = self.hbm, pcshr.cfn * PAGE_SIZE, TrafficClass.WRITEBACK
        for sub in order:
            arrivals[sub] = src.access(base + sub * 64, False, tc)
        pcshr.launch(self.sim.now, arrivals)
        if self._tel is not None:
            self._tel.copy_instant(
                (self.name, pcshr.index), "launch", self.sim.now
            )
        last = max(arrivals)
        self.sim.schedule_at(last, lambda p=pcshr: self._transfer_in_done(p))
        # Wake any reads that were parked while waiting for a buffer.
        for sub, callback in pcshr.pending_reads:
            ready = max(self.sim.now, arrivals[sub])
            self.sim.schedule_at(
                ready, _at_time(callback, ready + self.cfg.copy_buffer_latency)
            )
        pcshr.pending_reads = []

    def _transfer_in_done(self, pcshr: PCSHR) -> None:
        """Everything is in the buffer; drain to the destination device."""
        if self._tel is not None:
            self._tel.copy_instant(
                (self.name, pcshr.index), "drain", self.sim.now
            )
        if pcshr.cmd_type == CommandType.CACHE_FILL:
            dst, base, tc = self.hbm, pcshr.cfn * PAGE_SIZE, TrafficClass.FILL
        else:
            dst, base, tc = self.ddr, pcshr.pfn * PAGE_SIZE, TrafficClass.WRITEBACK
        write_times = [0] * SUB_BLOCKS_PER_PAGE
        for sub in range(SUB_BLOCKS_PER_PAGE):
            write_times[sub] = dst.access(base + sub * 64, True, tc)
        pcshr.write_times = write_times
        pcshr.free_at = max(write_times)
        self.sim.schedule_at(pcshr.free_at, lambda p=pcshr: self._complete(p))

    def _complete(self, pcshr: PCSHR) -> None:
        if self._tel is not None:
            self._tel.copy_end((self.name, pcshr.index), self.sim.now)
        pcshr.sync(self.sim.now)
        waiters, pcshr.complete_waiters = pcshr.complete_waiters, []
        for waiter in waiters:
            waiter()
        pcshr.release()
        del self._by_cfn[pcshr.cfn]
        self._free.append(pcshr)
        self.buffers.release()
        self._drain_commands()

    # ------------------------------------------------------------------
    # Data-hit verification on the DC access path (Section III-D3)
    # ------------------------------------------------------------------

    def probe(self, cfn: int) -> Optional[PCSHR]:
        """CFN tag compare against all PCSHRs; None means a data hit."""
        return self._by_cfn.get(cfn)

    def note_data_hit(self) -> None:
        self._data_hits.inc()

    def read_data_miss(
        self, pcshr: PCSHR, sub: int, done: Callable[[int], None]
    ) -> None:
        """Service a read that matched an in-flight page copy.

        If the sub-block already sits in the page copy buffer the read is
        served from there (saving on-package DRAM latency and bandwidth);
        otherwise it parks in a sub-entry until the sub-block arrives.
        """
        now = self.sim.now
        self._data_misses.inc()
        if not self.cfg.serve_from_copy_buffer:
            # Ablation: always wait for the full copy, then read the DC.
            pcshr.add_sub_entry(sub, id(done))

            def _read_from_dc() -> None:
                self.hbm.access(
                    pcshr.cfn * PAGE_SIZE + sub * 64,
                    False,
                    TrafficClass.DEMAND,
                    callback=lambda: done(self.sim.now),
                )

            pcshr.complete_waiters.append(_read_from_dc)
            return
        if pcshr.sub_block_in_buffer(sub, now):
            self._buffer_hits.inc()
            ready = now + self.cfg.copy_buffer_latency
            self.sim.schedule_at(ready, _at_time(done, ready))
            return
        # Park in a sub-entry until the data arrive.
        self._sub_entry_waits.inc()
        pcshr.add_sub_entry(sub, id(done))
        arrival = pcshr.buffer_ready_time(sub)
        if arrival is None:
            # Copy not launched yet (waiting for a page copy buffer).
            pcshr.pending_reads.append((sub, done))
            return
        ready = max(now, arrival) + self.cfg.copy_buffer_latency
        self.sim.schedule_at(ready, _at_time(done, ready))

    def write_data_miss(self, pcshr: PCSHR, sub: int) -> int:
        """A write that matched an in-flight copy merges into the buffer.

        Returns the completion time (writes complete immediately in the
        buffer; the drain carries the merged data to the destination).
        """
        self._data_misses.inc()
        self._buffer_write_merges.inc()
        pcshr.record_cpu_write(sub)
        return self.sim.now + self.cfg.copy_buffer_latency

    # -- reporting ----------------------------------------------------------

    def buffer_hit_ratio(self) -> float:
        """Fraction of data misses served directly by page copy buffers
        (read hits in the buffer plus write merges into it)."""
        served = self._buffer_hits.value + self._buffer_write_merges.value
        total = served + self._sub_entry_waits.value
        return served / total if total else 0.0

    @property
    def outstanding_copies(self) -> int:
        return len(self._by_cfn)

    def guard_state(self) -> dict:
        return {
            "outstanding_copies": len(self._by_cfn),
            "free_pcshrs": len(self._free),
            "queued_commands": len(self._cmd_waiters),
            "active_cfns": sorted(self._by_cfn)[:16],
        }


def _at_time(callback: Callable[[int], None], t: int) -> Callable[[], None]:
    def _fire() -> None:
        callback(t)

    return _fire
