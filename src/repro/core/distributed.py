"""Distributed back-ends (paper Section III-F, Fig. 8b).

One back-end per on-package DRAM channel; page copy commands route by a
few CFN bits.  Because the front-end allocates cache frames sequentially
(FIFO), commands spread uniformly across the back-ends, which is why the
paper finds distributed and centralized designs perform alike (Fig. 16).

The total PCSHR/buffer budget is split evenly across the back-ends.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.config.schemes import NomadConfig
from repro.core.backend import Backend
from repro.core.frontend import DataManager
from repro.core.pcshr import PCSHR
from repro.dram.device import DRAMDevice
from repro.engine.simulator import Simulator


class DistributedBackend(DataManager):
    """Routes commands and probes to per-channel back-ends by CFN."""

    def __init__(
        self,
        sim: Simulator,
        cfg: NomadConfig,
        hbm: DRAMDevice,
        ddr: DRAMDevice,
        num_backends: Optional[int] = None,
    ):
        self.cfg = cfg
        k = num_backends if num_backends is not None else hbm.cfg.num_channels
        if k <= 0:
            raise ValueError(f"need at least one back-end, got {k}")
        per_pcshrs = max(1, cfg.num_pcshrs // k)
        per_buffers = max(1, cfg.resolved_copy_buffers() // k)
        self.backends: List[Backend] = [
            Backend(
                sim, cfg, hbm, ddr,
                name=f"backend{i}",
                num_pcshrs=per_pcshrs,
                num_buffers=per_buffers,
            )
            for i in range(k)
        ]

    def _route(self, cfn: int) -> Backend:
        return self.backends[cfn % len(self.backends)]

    # -- DataManager ---------------------------------------------------------

    def fill(self, cfn, pfn, sub_block, on_offloaded, on_resume) -> None:
        self._route(cfn).fill(cfn, pfn, sub_block, on_offloaded, on_resume)

    def writeback(self, cfn, pfn, on_offloaded) -> None:
        self._route(cfn).writeback(cfn, pfn, on_offloaded)

    def frame_busy(self, cfn: int) -> bool:
        return self._route(cfn).frame_busy(cfn)

    # -- data-hit verification -------------------------------------------------

    def probe(self, cfn: int) -> Optional[PCSHR]:
        return self._route(cfn).probe(cfn)

    def note_data_hit(self) -> None:
        self.backends[0].note_data_hit()

    def read_data_miss(self, pcshr: PCSHR, sub: int, done: Callable[[int], None]) -> None:
        self._route(pcshr.cfn).read_data_miss(pcshr, sub, done)

    def write_data_miss(self, pcshr: PCSHR, sub: int) -> int:
        return self._route(pcshr.cfn).write_data_miss(pcshr, sub)

    # -- reporting ----------------------------------------------------------

    def buffer_hit_ratio(self) -> float:
        served = sum(
            b.stats.get("buffer_hits").value
            + b.stats.get("buffer_write_merges").value
            for b in self.backends
        )
        waits = sum(b.stats.get("sub_entry_waits").value for b in self.backends)
        total = served + waits
        return served / total if total else 0.0

    def command_wait_mean(self) -> float:
        total = sum(b.stats.get("command_wait").total for b in self.backends)
        count = sum(b.stats.get("command_wait").count for b in self.backends)
        return total / count if count else 0.0
