"""The circular cache-frame free queue (paper Fig. 5).

Cache frames are managed FIFO: the DC tag miss handler allocates from the
``head`` on demand, and the background eviction daemon reclaims from the
``tail`` proactively.  Frames can be non-free at the head (skipped by the
allocator) because the eviction daemon leaves TLB-resident frames in
place to avoid shootdowns; the paper notes this is rare since TLB
coverage is far below DC capacity.
"""

from __future__ import annotations

from repro.vm.descriptors import CPDArray


class FreeQueue:
    """Head/tail pointers over the CFN space, with a free-frame count."""

    def __init__(self, num_frames: int):
        if num_frames <= 0:
            raise ValueError(f"need at least one cache frame, got {num_frames}")
        self.num_frames = num_frames
        self.head = 0
        self.tail = 0
        self.num_free = num_frames
        self.head_skips = 0  # valid frames stepped over by the allocator

    def allocate(self, cpds: CPDArray) -> int:
        """Find the next free frame from the head (Algorithm 1, lines 2-5).

        Raises ``RuntimeError`` when no frame is free; callers must check
        :attr:`num_free` first (the miss handler waits for the eviction
        daemon in that case).
        """
        if self.num_free <= 0:
            raise RuntimeError("allocate with no free cache frames")
        scanned = 0
        while cpds[self.head].valid:
            self.head = (self.head + 1) % self.num_frames
            self.head_skips += 1
            scanned += 1
            if scanned > self.num_frames:
                raise RuntimeError("free queue scan wrapped: accounting bug")
        cfn = self.head
        self.head = (self.head + 1) % self.num_frames
        self.num_free -= 1
        return cfn

    def advance_tail(self) -> int:
        """Step the tail pointer past one frame; returns the old tail."""
        old = self.tail
        self.tail = (self.tail + 1) % self.num_frames
        return old

    def mark_freed(self) -> None:
        self.num_free += 1
        if self.num_free > self.num_frames:
            raise RuntimeError("freed more frames than exist")

    @property
    def allocated(self) -> int:
        return self.num_frames - self.num_free
