"""NOMAD: the assembled non-blocking OS-managed DRAM cache.

Ties the front-end OS routines (tag management via PTEs/TLBs, FIFO frame
allocation, background eviction) to the back-end hardware (PCSHRs, page
copy buffers) through the decoupled tag-data management contract of
Section III-A:

* a DC *tag* miss resumes the thread as soon as the tag is updated and
  the cache-fill command sits in a PCSHR;
* every DC access on a tag hit verifies the *data* hit against the PCSHR
  file; data misses are serviced from the page copy buffer or parked in
  sub-entries -- with no OS intervention, which is what makes the cache
  non-blocking.
"""

from __future__ import annotations

from typing import Callable, Union

from repro.common.types import DC_SPACE_BIT, MemAccess, TrafficClass
from repro.config.schemes import BackendTopology, NomadConfig
from repro.config.system import SystemConfig
from repro.core.backend import Backend
from repro.core.distributed import DistributedBackend
from repro.core.frontend import FrontEnd
from repro.engine.simulator import Simulator
from repro.schemes.base import SchemeBase, is_dc_addr

_DEMAND = TrafficClass.DEMAND


class NomadScheme(SchemeBase):
    """The paper's proposal."""

    scheme_name = "nomad"

    def __init__(
        self,
        sim: Simulator,
        cfg: SystemConfig,
        nomad_cfg: NomadConfig = NomadConfig(),
    ):
        super().__init__(sim, cfg)
        self.nomad_cfg = nomad_cfg
        if nomad_cfg.topology == BackendTopology.DISTRIBUTED:
            self.backend: Union[Backend, DistributedBackend] = DistributedBackend(
                sim, nomad_cfg, self.hbm, self.ddr
            )
        else:
            self.backend = Backend(sim, nomad_cfg, self.hbm, self.ddr)
        self.frontend = FrontEnd(
            sim,
            cfg,
            self.backend,
            self.page_tables,
            self.tables,
            self.hierarchy,
            self.hbm,
            use_mutex=nomad_cfg.frontend_mutex,
            tag_mgmt_latency=nomad_cfg.tag_mgmt_latency,
            eviction_threshold=nomad_cfg.eviction_threshold_frames,
            eviction_batch=nomad_cfg.eviction_batch,
            eviction_cost=nomad_cfg.eviction_cost_per_frame,
            assume_all_dirty=not nomad_cfg.dirty_in_cache_bits,
        )
        self.frontend.attach_tlbs(self.tlbs)
        self._data_hits_fast = self.stats.counter("uncached_accesses")
        # dc_access bindings: one probe + CPD poke per LLC miss.
        self._probe = self.backend.probe
        self._cpd_list = self.frontend.cpds._cpds
        self._pcshr_lookup = nomad_cfg.pcshr_lookup_latency
        self._hbm_access = self.hbm.access
        self._ddr_access = self.ddr.access

    # -- OS integration -----------------------------------------------------

    def on_tlb_change(self, core_id, vpn, pte, installed) -> None:
        self.frontend.tlb_changed(core_id, pte, installed)

    def _needs_os_intervention(self, pte) -> bool:
        return pte.is_tag_miss

    def translate_miss(self, core_id, vpn, now, done, addr=0) -> None:
        pte, walk = self.walkers[core_id].walk(vpn)
        ready = now + walk

        def _after_walk() -> None:
            if pte.is_tag_miss:
                self.frontend.handle_tag_miss(core_id, vpn, pte, addr, _install)
            else:
                _install(self.sim.now)

        def _install(t: int) -> None:
            self.tlbs[core_id].install(vpn, pte)
            done(t, pte)

        self.sim.schedule_at(ready, _after_walk)

    # -- DC access path (data-hit verification, Section III-D3) --------------

    def dc_access(self, access: MemAccess, fill_cb: Callable[[int], None]) -> None:
        start = self.sim.now
        paddr = access.paddr if access.paddr is not None else access.addr
        if not is_dc_addr(paddr):
            # Uncached page: behaves like the conventional memory system.
            self._data_hits_fast.inc()
            self._ddr_access(
                paddr, access.is_write, _DEMAND,
                lambda: fill_cb(self.sim.now),
            )
            return

        hbm_addr = paddr & ~DC_SPACE_BIT
        cfn = hbm_addr >> 12
        lookup = self._pcshr_lookup
        pcshr = self._probe(cfn)

        if pcshr is None:
            # No matched tag: the whole page is resident (data hit).
            self.backend.note_data_hit()
            if access.is_write:
                self._cpd_list[cfn].dirty_in_cache = True

            def _done() -> None:
                end = self.sim.now + lookup
                self._record_dc_access(start, end)
                fill_cb(end)

            self._hbm_access(hbm_addr, access.is_write, _DEMAND, _done)
            return

        # Data miss: the page is still in transfer.
        sub = (hbm_addr >> 6) & 63
        if access.is_write:
            self._cpd_list[cfn].dirty_in_cache = True
            t = self.backend.write_data_miss(pcshr, sub) + lookup
            self.sim.schedule_at(t, lambda: fill_cb(t))
            self._record_dc_access(start, t)
            return

        def _read_done(t: int) -> None:
            end = t + lookup
            self._record_dc_access(start, end)
            fill_cb(end)

        self.backend.read_data_miss(pcshr, sub, _read_done)

    def dc_writeback(self, paddr: int) -> None:
        if not is_dc_addr(paddr):
            self.ddr.access(paddr, True, TrafficClass.DEMAND)
            return
        hbm_addr = paddr & ~DC_SPACE_BIT
        cfn = hbm_addr >> 12
        self.frontend.cpds[cfn].dirty_in_cache = True
        pcshr = self.backend.probe(cfn)
        if pcshr is not None:
            self.backend.write_data_miss(pcshr, (hbm_addr >> 6) & 63)
        else:
            self.hbm.access(hbm_addr, True, TrafficClass.DEMAND)

    def _warm_cache_page(self, core_id, vpn, pte, dirty=False) -> None:
        if pte.is_tag_miss:
            self.frontend.warm_fill(core_id, vpn, pte, dirty=dirty)

    # -- reporting -----------------------------------------------------------

    def tag_mgmt_latency_mean(self) -> float:
        return self.frontend.stats.get("tag_mgmt_latency").mean

    def buffer_hit_ratio(self) -> float:
        return self.backend.buffer_hit_ratio()

    def page_fills(self) -> int:
        return self.frontend.stats.get("fills").value

    def page_writebacks(self) -> int:
        return self.frontend.stats.get("writeback_commands").value


def _ideal_config() -> NomadConfig:
    return NomadConfig(
        num_pcshrs=1 << 16,
        num_copy_buffers=1 << 16,
        tag_mgmt_latency=0,
        eviction_cost_per_frame=0,
        pcshr_lookup_latency=0,
        copy_buffer_latency=0,
        frontend_mutex=False,
    )


class IdealScheme(NomadScheme):
    """The paper's Ideal upper bound: a "perfect NOMAD".

    OS routines cost nothing (no tag-management latency, no mutex, free
    eviction) and the back-end has effectively unlimited PCSHRs and page
    copy buffers -- but page copies still move real bytes through the
    DRAM devices and a data miss still waits for its sub-block, so
    performance is bounded only by memory-system physics.
    """

    scheme_name = "ideal"

    def __init__(self, sim: Simulator, cfg: SystemConfig):
        super().__init__(sim, cfg, _ideal_config())
