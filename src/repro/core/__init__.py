"""NOMAD: the paper's contribution.

* :mod:`repro.core.free_queue` -- circular FIFO cache-frame queue (Fig. 5)
* :mod:`repro.core.frontend`   -- OS routines: DC tag miss handler
  (Algorithm 1) and background eviction daemon (Algorithm 2)
* :mod:`repro.core.pcshr`      -- page copy status/information holding
  registers with R/B/W sub-block vectors and sub-entries (Fig. 6)
* :mod:`repro.core.page_copy_buffer` -- the buffer pool (area-optimized
  designs decouple buffer count from PCSHR count, Fig. 15)
* :mod:`repro.core.backend`    -- the back-end hardware: interface
  register, PCSHR file, copy execution, data-hit verification
* :mod:`repro.core.nomad`      -- the assembled NOMAD scheme
"""

from repro.core.backend import Backend
from repro.core.free_queue import FreeQueue
from repro.core.frontend import FrontEnd
from repro.core.nomad import IdealScheme, NomadScheme
from repro.core.page_copy_buffer import PageCopyBufferPool
from repro.core.pcshr import CommandType, PCSHR, SubEntry

__all__ = [
    "Backend",
    "CommandType",
    "FreeQueue",
    "FrontEnd",
    "IdealScheme",
    "NomadScheme",
    "PCSHR",
    "PageCopyBufferPool",
    "SubEntry",
]
