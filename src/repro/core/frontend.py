"""NOMAD front-end OS routines (paper Section III-C).

Two routines manage cache frames FIFO over a circular free queue:

* the **DC tag miss handler** (Algorithm 1) runs when a page walk finds a
  cacheable-but-uncached page: find a free frame from the head, offload a
  cache-fill command to the data manager (the NOMAD back-end; a blocking
  copy engine for TDC; a no-op for Ideal), update the CPD/PTE/PPD tags,
  and resume the thread;
* the **background eviction daemon** (Algorithm 2) reclaims frames from
  the tail when free frames drop below a threshold: it skips TLB-resident
  frames (shootdown avoidance via the CPD TLB directory), flushes the
  victims' SRAM lines, offloads writebacks for dirty frames, and restores
  PTEs through the reverse map.

The whole frame-management path is a critical section (one mutex); the
observed tag-management latency therefore grows with contention, which is
the effect Figs. 11 and 14 quantify.  TDC is built from this same
front-end with ``use_mutex=False`` (it locks only critical PTEs) and a
blocking data manager.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.common.types import DC_SPACE_BIT, TrafficClass, sub_block_of
from repro.config.system import SystemConfig
from repro.core.free_queue import FreeQueue
from repro.engine.simulator import Component, Simulator
from repro.engine.sync import Mutex
from repro.vm.descriptors import CPDArray
from repro.vm.page_table import PTE

# Cost of a forced TLB shootdown (inter-processor interrupts + waits);
# only paid on the rare fallback path when proactive eviction cannot make
# progress because every tail frame is TLB-resident.
TLB_SHOOTDOWN_COST = 4000


class DataManager:
    """What the front-end offloads data movement to.

    ``fill``/``writeback`` take two callbacks:

    * ``on_offloaded()`` fires (at simulated time) when the command has
      been *accepted* -- for NOMAD this is when a PCSHR was allocated
      (the OS spins on the busy interface until then, still holding the
      mutex);
    * ``on_resume(t)`` fires when the application thread may continue --
      immediately after acceptance for NOMAD (non-blocking), only after
      the whole page copy for TDC (blocking).
    """

    def fill(self, cfn: int, pfn: int, sub_block: int,
             on_offloaded: Callable[[], None],
             on_resume: Callable[[int], None]) -> None:
        raise NotImplementedError

    def writeback(self, cfn: int, pfn: int,
                  on_offloaded: Callable[[], None]) -> None:
        raise NotImplementedError

    def frame_busy(self, cfn: int) -> bool:
        """True while a fill for ``cfn`` is still in flight."""
        return False


class FrontEnd(Component):
    """Cache-frame management: tag miss handler + eviction daemon."""

    # Telemetry tracer hook (repro.telemetry); instance attr when armed.
    _tel = None

    def __init__(
        self,
        sim: Simulator,
        cfg: SystemConfig,
        data_manager: DataManager,
        page_tables,
        tables,
        hierarchy,
        hbm,
        *,
        use_mutex: bool = True,
        tag_mgmt_latency: int = 400,
        eviction_threshold: int = 256,
        eviction_batch: int = 64,
        eviction_cost: int = 30,
        flush_on_evict: bool = True,
        assume_all_dirty: bool = False,
    ):
        super().__init__(sim, "frontend")
        self.cfg = cfg
        self.data_manager = data_manager
        self.page_tables = page_tables
        self.tables = tables
        self.hierarchy = hierarchy
        self.hbm = hbm
        self.cpds = CPDArray(cfg.dc_pages)
        self.free_queue = FreeQueue(cfg.dc_pages)
        self.mutex: Optional[Mutex] = Mutex(sim, "frame_mgmt") if use_mutex else None
        self.tag_mgmt_latency = tag_mgmt_latency
        self.eviction_threshold = eviction_threshold
        self.eviction_batch = eviction_batch
        self.eviction_cost = eviction_cost
        self.flush_on_evict = flush_on_evict
        # Ablation of the dirty-in-cache (DC) bits: without them the OS
        # cannot tell clean frames apart and must write back every victim.
        self.assume_all_dirty = assume_all_dirty

        self._daemon_running = False
        self._frame_waiters: List[Callable[[], None]] = []
        self._tlbs = None
        self._evict_remaining = 0
        self._batch_freed = 0

        self._tag_latency = self.stats.mean("tag_mgmt_latency")
        self._fills = self.stats.counter("fills")
        self._evictions = self.stats.counter("evictions")
        self._wb_cmds = self.stats.counter("writeback_commands")
        self._tlb_skips = self.stats.counter("eviction_tlb_skips")
        self._busy_skips = self.stats.counter("eviction_busy_skips")
        self._shootdowns = self.stats.counter("forced_shootdowns")
        self._flush_dirty = self.stats.counter("flushed_dirty_lines")

    # ------------------------------------------------------------------
    # DC tag miss handler (Algorithm 1)
    # ------------------------------------------------------------------

    def handle_tag_miss(
        self,
        core_id: int,
        vpn: int,
        pte: PTE,
        addr: int,
        done: Callable[[int], None],
    ) -> None:
        """Resolve a DC tag miss; ``done(resume_time)`` fires when the
        application thread may continue."""
        t0 = self.sim.now
        if self._tel is not None:
            tel, inner = self._tel, done

            def done(t: int, _tel=tel, _inner=inner) -> None:
                _tel.os_span(f"core{core_id}", "tag_miss", t0, t - t0)
                _inner(t)


        def _with_mutex():
            # Two serialized on-package reads + sync overhead (~400 cyc).
            self.sim.schedule(self.tag_mgmt_latency, _find_frame)

        def _find_frame():
            if self.free_queue.num_free <= 0:
                # Out of frames: drop the lock so the eviction daemon can
                # run, then retry once it signals (condition-variable
                # semantics; holding the mutex here would deadlock).
                if self.mutex is not None:
                    self.mutex.release()
                self._frame_waiters.append(_reacquire)
                self._trigger_daemon(force=True)
                return
            cfn = self.free_queue.allocate(self.cpds)
            self.data_manager.fill(
                cfn,
                pte.page_frame_num,
                sub_block_of(addr),
                on_offloaded=lambda c=cfn: _offloaded(c),
                on_resume=done,
            )

        def _reacquire():
            if self.mutex is not None:
                self.mutex.acquire(_find_frame, owner="tag_miss_retry")
            else:
                _find_frame()

        def _offloaded(cfn: int) -> None:
            self._commit_tags(core_id, vpn, pte, cfn)
            self._tag_latency.add(self.sim.now - t0)
            self._fills.inc()
            if self.mutex is not None:
                self.mutex.release()
            self._trigger_daemon()

        if self.mutex is not None:
            self.mutex.acquire(_with_mutex, owner="tag_miss_handler")
        else:
            _with_mutex()

    def _commit_tags(self, core_id: int, vpn: int, pte: PTE, cfn: int) -> None:
        """Tag management: CPD, PPD, and every mapping PTE (shared pages)."""
        pfn = pte.page_frame_num
        cpd = self.cpds[cfn]
        cpd.valid = True
        cpd.pfn = pfn
        cpd.dirty_in_cache = False
        cpd.tlb_directory = 0
        self.tables.ppd(pfn).cached = True
        for map_core, map_vpn in self.tables.reverse_map(pfn):
            mapped = self.page_tables[map_core].lookup(map_vpn)
            if mapped is not None:
                mapped.page_frame_num = cfn
                mapped.cached = True

    def warm_fill(self, core_id: int, vpn: int, pte: PTE,
                  dirty: bool = False) -> None:
        """Zero-cost fill for the warmup fast-forward: allocate a frame
        and commit tags without traffic, timing, or statistics."""
        if self.free_queue.num_free <= self.eviction_threshold:
            self._warm_evict(self.eviction_batch)
        if self.free_queue.num_free <= 0:
            return
        cfn = self.free_queue.allocate(self.cpds)
        self._commit_tags(core_id, vpn, pte, cfn)
        if dirty:
            self.cpds[cfn].dirty_in_cache = True

    def _warm_evict(self, n: int) -> None:
        fq = self.free_queue
        evicted = 0
        scanned = 0
        while evicted < n and fq.allocated > 0 and scanned < fq.num_frames:
            cpd = self.cpds[fq.tail]
            scanned += 1
            if not cpd.valid:
                fq.advance_tail()
                continue
            if cpd.in_any_tlb:
                fq.advance_tail()
                continue
            fq.advance_tail()
            self._restore_ptes(cpd)
            cpd.valid = False
            cpd.dirty_in_cache = False
            fq.mark_freed()
            evicted += 1

    # ------------------------------------------------------------------
    # Background eviction daemon (Algorithm 2)
    # ------------------------------------------------------------------

    def _below_threshold(self) -> bool:
        return self.free_queue.num_free < self.eviction_threshold

    def _trigger_daemon(self, force: bool = False) -> None:
        if self._daemon_running:
            return
        if not force and not self._below_threshold():
            return
        self._daemon_running = True
        self.sim.schedule(0, self._daemon_start)

    def _daemon_start(self) -> None:
        if self.mutex is not None:
            self.mutex.acquire(self._daemon_batch_begin,
                               owner="eviction_daemon")
        else:
            self._daemon_batch_begin()

    def _daemon_batch_begin(self) -> None:
        self._evict_remaining = self.eviction_batch
        self._batch_freed = 0
        if self._tel is not None:
            self._tel.os_begin(
                ("daemon",), "eviction_batch", "daemon", self.sim.now
            )
        self._daemon_step()

    def _daemon_step(self) -> None:
        fq = self.free_queue
        while True:
            if self._evict_remaining <= 0 or fq.allocated == 0:
                self._daemon_finish()
                return
            cpd = self.cpds[fq.tail]
            if not cpd.valid:
                fq.advance_tail()
                continue
            if cpd.in_any_tlb or self.data_manager.frame_busy(cpd.cfn):
                if cpd.in_any_tlb:
                    self._tlb_skips.inc()
                else:
                    self._busy_skips.inc()
                fq.advance_tail()
                self._evict_remaining -= 1
                continue
            break
        cfn = fq.advance_tail()
        self._evict_remaining -= 1
        self._evict_frame(cfn, self.eviction_cost, self._daemon_step)

    def _evict_frame(self, cfn: int, cost: int, cont: Callable[[], None]) -> None:
        """Reclaim one frame; ``cont`` resumes the daemon afterwards."""
        cpd = self.cpds[cfn]
        dirty = cpd.dirty_in_cache or self.assume_all_dirty
        # Flush SRAM lines of every mapping (Algorithm 2, line 3); dirty
        # lines must reach the DRAM cache before the page copies out.
        if self.flush_on_evict:
            for map_core, map_vpn in self.tables.reverse_map(cpd.pfn):
                for line_addr in self.hierarchy.invalidate_page(map_core, map_vpn):
                    self.hbm.access(
                        line_addr & ~DC_SPACE_BIT, True, TrafficClass.WRITEBACK
                    )
                    self._flush_dirty.inc()
                    dirty = True
        else:
            # Ideal mode: SRAM lines stay valid; just point them back at
            # the physical frame so later dirty evictions route sanely.
            for map_core, map_vpn in self.tables.reverse_map(cpd.pfn):
                self.hierarchy.retarget_page(
                    map_core, map_vpn, cpd.pfn * 4096
                )
        self._restore_ptes(cpd)
        cpd.valid = False
        cpd.dirty_in_cache = False
        self.free_queue.mark_freed()
        self._batch_freed += 1
        self._evictions.inc()
        if dirty:
            self._wb_cmds.inc()
            self.data_manager.writeback(
                cfn, cpd.pfn, on_offloaded=lambda: self.sim.schedule(cost, cont)
            )
        else:
            self.sim.schedule(cost, cont)

    def _restore_ptes(self, cpd) -> None:
        self.tables.ppd(cpd.pfn).cached = False
        for map_core, map_vpn in self.tables.reverse_map(cpd.pfn):
            mapped = self.page_tables[map_core].lookup(map_vpn)
            if mapped is not None and mapped.cached and mapped.page_frame_num == cpd.cfn:
                mapped.page_frame_num = cpd.pfn
                mapped.cached = False
                mapped.dirty_in_cache = False

    def _daemon_finish(self) -> None:
        if self._tel is not None:
            self._tel.os_end(
                ("daemon",), self.sim.now, {"freed": self._batch_freed}
            )
        if self._batch_freed == 0 and self._frame_waiters:
            # Fallback: every reclaimable frame was TLB-resident.  Force a
            # shootdown on one frame so allocation can make progress.
            self._force_shootdown_evict()
        if self.mutex is not None:
            self.mutex.release()
        self._daemon_running = False
        waiters, self._frame_waiters = self._frame_waiters, []
        for waiter in waiters:
            self.sim.schedule(0, waiter)
        if self._below_threshold() and self._batch_freed > 0:
            self._trigger_daemon()

    def _force_shootdown_evict(self) -> None:
        fq = self.free_queue
        scanned = 0
        while scanned < fq.num_frames:
            cpd = self.cpds[fq.tail]
            scanned += 1
            if cpd.valid and not self.data_manager.frame_busy(cpd.cfn):
                for map_core, map_vpn in self.tables.reverse_map(cpd.pfn):
                    self._shootdown(map_core, map_vpn)
                self._shootdowns.inc()
                cfn = fq.advance_tail()
                self._evict_frame(cfn, TLB_SHOOTDOWN_COST, lambda: None)
                return
            fq.advance_tail()

    def _shootdown(self, core_id: int, vpn: int) -> None:
        """Invalidate one translation everywhere (the expensive path)."""
        if self._tlbs is not None:
            self._tlbs[core_id].invalidate(vpn)

    def attach_tlbs(self, tlbs) -> None:
        """Give the front-end shootdown access to the per-core TLBs."""
        self._tlbs = tlbs

    def guard_state(self) -> dict:
        fq = self.free_queue
        state = {
            "free_frames": fq.num_free,
            "allocated_frames": fq.allocated,
            "head": fq.head,
            "tail": fq.tail,
            "daemon_running": self._daemon_running,
            "frame_waiters": len(self._frame_waiters),
        }
        if self.mutex is not None:
            state["mutex_locked"] = self.mutex.locked
            state["mutex_holder"] = self.mutex.holder
            state["mutex_queue_depth"] = self.mutex.queue_depth
        return state

    # ------------------------------------------------------------------
    # TLB directory maintenance (called from the scheme's TLB hooks)
    # ------------------------------------------------------------------

    def tlb_changed(self, core_id: int, pte: PTE, installed: bool) -> None:
        if not pte.cached:
            return
        cpd = self.cpds[pte.page_frame_num]
        if installed:
            cpd.set_tlb_bit(core_id)
        else:
            cpd.clear_tlb_bit(core_id)
