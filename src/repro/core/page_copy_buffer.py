"""The page copy buffer pool.

Each in-flight page copy stages its 4 KB of data in a page copy buffer
(Fig. 3).  The default design pairs one buffer with every PCSHR; the
area-optimized design of Section IV-B7 provisions fewer buffers than
PCSHRs, so a freshly allocated PCSHR may have to wait for a buffer
before its transfers launch.  The pool is a FIFO counting semaphore.
"""

from __future__ import annotations

from collections import deque
from typing import Callable

from repro.engine.simulator import Simulator


class PageCopyBufferPool:
    """FIFO pool of page copy buffers."""

    def __init__(self, sim: Simulator, count: int):
        if count <= 0:
            raise ValueError(f"need at least one page copy buffer, got {count}")
        self.sim = sim
        self.count = count
        self.free = count
        self._waiters: deque = deque()
        self.acquisitions = 0
        self.waits = 0

    def acquire(self, granted: Callable[[], None]) -> None:
        """``granted()`` runs (synchronously if possible) holding a buffer."""
        self.acquisitions += 1
        if self.free > 0:
            self.free -= 1
            granted()
        else:
            self.waits += 1
            self._waiters.append(granted)

    def release(self) -> None:
        if self._waiters:
            waiter = self._waiters.popleft()
            self.sim.schedule(0, waiter)
        else:
            self.free += 1
            if self.free > self.count:
                raise RuntimeError("released more buffers than exist")

    @property
    def in_use(self) -> int:
        return self.count - self.free
