"""Virtual memory substrate: page tables, TLBs, page descriptors.

Implements the OS data structures of Section III-C: PTEs extended with
cached (C) / non-cacheable (NC) / dirty-in-cache (DC) bits, physical page
descriptors (PPDs) with reverse mappings, cache page descriptors (CPDs)
with a TLB directory for shootdown avoidance, and two-level TLBs.
"""

from repro.vm.descriptors import CPD, PPD, DescriptorTables
from repro.vm.page_table import PTE, PageTable
from repro.vm.tlb import TLB
from repro.vm.walker import PageWalker

__all__ = ["CPD", "DescriptorTables", "PPD", "PTE", "PageTable", "PageWalker", "TLB"]
