"""Two-level per-core data TLBs with TLB-directory maintenance.

The L2 TLB is inclusive of the L1.  When an entry for a DC-cached page
is installed or finally evicted, the owning scheme's CPD TLB-directory
bit is set/cleared via callbacks -- the mechanism NOMAD and TDC use to
avoid TLB shootdowns (the eviction daemon never victimizes a frame whose
translation is still TLB-resident).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Optional

from repro.config.system import TLBConfig
from repro.vm.page_table import PTE


class TLB:
    """One core's L1+L2 data TLB."""

    def __init__(
        self,
        core_id: int,
        cfg: TLBConfig,
        on_install: Optional[Callable[[int, PTE], None]] = None,
        on_evict: Optional[Callable[[int, PTE], None]] = None,
    ):
        self.core_id = core_id
        self.cfg = cfg
        self._l1: "OrderedDict[int, PTE]" = OrderedDict()
        self._l2: "OrderedDict[int, PTE]" = OrderedDict()
        self.on_install = on_install
        self.on_evict = on_evict
        self.l1_hits = 0
        self.l2_hits = 0
        self.misses = 0

    def lookup(self, vpn: int) -> Optional[tuple]:
        """Returns ``(pte, extra_latency)`` on a hit, None on a miss."""
        pte = self._l1.get(vpn)
        if pte is not None:
            self._l1.move_to_end(vpn)
            self._l2.move_to_end(vpn)
            self.l1_hits += 1
            return pte, 0
        pte = self._l2.get(vpn)
        if pte is not None:
            self._l2.move_to_end(vpn)
            self._promote_to_l1(vpn, pte)
            self.l2_hits += 1
            return pte, self.cfg.l2_latency
        self.misses += 1
        return None

    def contains(self, vpn: int) -> bool:
        return vpn in self._l2

    def install(self, vpn: int, pte: PTE) -> None:
        """Install a walked translation into both levels."""
        if vpn in self._l2:
            self._l2.move_to_end(vpn)
            self._promote_to_l1(vpn, pte)
            return
        while len(self._l2) >= self.cfg.l2_entries:
            evicted_vpn, evicted_pte = self._l2.popitem(last=False)
            self._l1.pop(evicted_vpn, None)
            if self.on_evict is not None:
                self.on_evict(evicted_vpn, evicted_pte)
        self._l2[vpn] = pte
        self._promote_to_l1(vpn, pte)
        if self.on_install is not None:
            self.on_install(vpn, pte)

    def invalidate(self, vpn: int) -> bool:
        """Drop a translation (shootdown); True if it was present."""
        self._l1.pop(vpn, None)
        pte = self._l2.pop(vpn, None)
        if pte is not None:
            if self.on_evict is not None:
                self.on_evict(vpn, pte)
            return True
        return False

    def _promote_to_l1(self, vpn: int, pte: PTE) -> None:
        if vpn in self._l1:
            self._l1.move_to_end(vpn)
            return
        while len(self._l1) >= self.cfg.l1_entries:
            self._l1.popitem(last=False)
        self._l1[vpn] = pte

    @property
    def occupancy(self) -> int:
        return len(self._l2)

    def consistency_problems(self) -> list:
        """Self-check of the TLB's structural invariants (guard sweeps).

        The L2 is inclusive of the L1, both levels are capacity-bounded,
        and a vpn resident in both levels must map to the same PTE
        object (install/invalidate always update the levels together).
        """
        problems = []
        if len(self._l1) > self.cfg.l1_entries:
            problems.append(
                f"core{self.core_id} L1 TLB holds {len(self._l1)} entries, "
                f"capacity {self.cfg.l1_entries}"
            )
        if len(self._l2) > self.cfg.l2_entries:
            problems.append(
                f"core{self.core_id} L2 TLB holds {len(self._l2)} entries, "
                f"capacity {self.cfg.l2_entries}"
            )
        for vpn, pte in self._l1.items():
            l2_pte = self._l2.get(vpn)
            if l2_pte is None:
                problems.append(
                    f"core{self.core_id} vpn={vpn} in L1 but not L2: "
                    f"inclusion broken"
                )
            elif l2_pte is not pte:
                problems.append(
                    f"core{self.core_id} vpn={vpn} maps different PTE "
                    f"objects in L1 and L2"
                )
        return problems
