"""Physical and cache page descriptors (paper Fig. 4) and reverse maps.

* PPD -- per physical frame: conventional flags plus the appended
  cached (C) and non-cacheable (NC) bits.
* CPD -- per cache frame: valid (V), dirty-in-cache (DC), the PFN the
  frame caches (for PTE restoration at eviction), and a TLB directory
  bitmask used for TLB-shootdown avoidance (the eviction daemon skips
  frames whose translations still sit in some core's TLB).
* Reverse mappings -- PFN -> [(core, vpn)] so the eviction daemon can
  restore every PTE that maps an evicted frame (shared-page support,
  Section III-G).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


@dataclass(slots=True)
class PPD:
    """Physical page descriptor."""

    pfn: int
    cached: bool = False  # C bit
    non_cacheable: bool = False  # NC bit
    dirty: bool = False

    def __reduce__(self):
        # Machine snapshots pickle one PPD per allocated frame; the
        # positional form is several times cheaper than the generic
        # slots protocol (see PTE.__reduce__).
        return (PPD, (self.pfn, self.cached, self.non_cacheable, self.dirty))


@dataclass(slots=True)
class CPD:
    """Cache page descriptor (42 bits in the paper; 8 B aligned).

    ``slots=True``: a 64 MB cache has 16 K of these, probed on the DC
    write path and scanned by the eviction daemon.
    """

    cfn: int
    valid: bool = False
    dirty_in_cache: bool = False
    pfn: int = 0
    tlb_directory: int = 0  # bitmask: which cores' TLBs hold this CFN

    def __reduce__(self):
        # One CPD per cache frame (16 K at 64 MB); see PTE.__reduce__.
        return (CPD, (
            self.cfn, self.valid, self.dirty_in_cache,
            self.pfn, self.tlb_directory,
        ))

    @property
    def in_any_tlb(self) -> bool:
        return self.tlb_directory != 0

    def set_tlb_bit(self, core_id: int) -> None:
        self.tlb_directory |= 1 << core_id

    def clear_tlb_bit(self, core_id: int) -> None:
        self.tlb_directory &= ~(1 << core_id)


class DescriptorTables:
    """The OS's frame bookkeeping: PFN allocator, PPD array, reverse map."""

    def __init__(self):
        self._next_pfn = 0
        self._ppds: Dict[int, PPD] = {}
        self._rmap: Dict[int, List[Tuple[int, int]]] = {}

    def allocate(self, core_id: int, vpn: int) -> int:
        """Allocate a fresh physical frame mapped by ``(core, vpn)``."""
        pfn = self._next_pfn
        self._next_pfn += 1
        self._ppds[pfn] = PPD(pfn)
        self._rmap[pfn] = [(core_id, vpn)]
        return pfn

    def share(self, pfn: int, core_id: int, vpn: int) -> None:
        """Add another mapping to an existing frame (shared pages)."""
        if pfn not in self._ppds:
            raise KeyError(f"PFN {pfn} was never allocated")
        self._rmap[pfn].append((core_id, vpn))

    def ppd(self, pfn: int) -> PPD:
        return self._ppds[pfn]

    def reverse_map(self, pfn: int) -> List[Tuple[int, int]]:
        """All (core, vpn) pairs whose PTEs map ``pfn``."""
        return list(self._rmap.get(pfn, ()))

    @property
    def frames_allocated(self) -> int:
        return self._next_pfn


class CPDArray:
    """The cache page descriptor array, indexed by CFN."""

    def __init__(self, num_frames: int):
        if num_frames <= 0:
            raise ValueError(f"need at least one cache frame, got {num_frames}")
        self.num_frames = num_frames
        self._cpds = [CPD(cfn) for cfn in range(num_frames)]

    def __getitem__(self, cfn: int) -> CPD:
        return self._cpds[cfn]

    def __len__(self) -> int:
        return self.num_frames

    def valid_count(self) -> int:
        return sum(1 for c in self._cpds if c.valid)
