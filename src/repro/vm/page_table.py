"""Per-process page tables with the NOMAD PTE extension (Fig. 4).

A PTE's ``page_frame_num`` holds the *physical* frame number normally and
is replaced by the *cache* frame number while the page resides in the
DRAM cache -- exactly the paper's tag-in-PTE trick.  The C (cached) and
NC (non-cacheable) bits stored in the PTE's unused field let the page
walker detect a DC tag miss (cacheable but not cached) without touching
any other structure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional


@dataclass(slots=True)
class PTE:
    """One page table entry.

    ``slots=True``: one PTE exists per touched page, and the walker and
    translate path read these attributes on every access.
    """

    page_frame_num: int
    present: bool = True
    cached: bool = False  # C bit: frame number is a CFN
    non_cacheable: bool = False  # NC bit
    dirty: bool = False  # conventional dirty bit
    dirty_in_cache: bool = False  # DC bit (mirrored in the CPD)

    def __reduce__(self):
        # Positional-args reduce instead of the generic slots protocol: a
        # machine snapshot pickles one PTE per touched page, and the TLBs
        # alias the page table's PTE objects, so they must round-trip as
        # objects (pickle's memo keeps the aliasing) but cheaply.
        return (PTE, (
            self.page_frame_num, self.present, self.cached,
            self.non_cacheable, self.dirty, self.dirty_in_cache,
        ))

    @property
    def is_tag_miss(self) -> bool:
        """Cacheable but not cached: triggers the DC tag miss handler."""
        return self.present and not self.non_cacheable and not self.cached


class PageTable:
    """One core's (process's) virtual address space.

    Physical frames are allocated lazily on first touch from a shared
    allocator, mirroring demand paging.
    """

    def __init__(self, core_id: int, frame_allocator):
        self.core_id = core_id
        self._frame_allocator = frame_allocator
        self._entries: Dict[int, PTE] = {}
        self.pages_touched = 0

    def lookup(self, vpn: int) -> Optional[PTE]:
        """The PTE for ``vpn`` or None if never touched."""
        return self._entries.get(vpn)

    def get_or_create(self, vpn: int) -> PTE:
        """Walk; allocate a physical frame on first touch."""
        pte = self._entries.get(vpn)
        if pte is None:
            pfn = self._frame_allocator.allocate(self.core_id, vpn)
            pte = PTE(page_frame_num=pfn)
            self._entries[vpn] = pte
            self.pages_touched += 1
        return pte

    def entries(self):
        return self._entries.items()

    def __len__(self) -> int:
        return len(self._entries)
