"""Page-table walker: the TLB-miss penalty.

The paper treats the walk as a fixed penalty added to the (miss, *)
cases (Section III-E); page-table memory traffic is assumed to hit the
SRAM hierarchy.  We model the walk as a constant latency and count
walks so the harness can report TLB behaviour.
"""

from __future__ import annotations

from repro.config.system import TLBConfig
from repro.vm.page_table import PageTable, PTE


class PageWalker:
    """Constant-latency walker over one core's page table."""

    def __init__(self, core_id: int, cfg: TLBConfig, page_table: PageTable):
        self.core_id = core_id
        self.cfg = cfg
        self.page_table = page_table
        self.walks = 0

    def walk(self, vpn: int) -> tuple:
        """Returns ``(pte, walk_latency)``; allocates the frame on first touch."""
        self.walks += 1
        pte = self.page_table.get_or_create(vpn)
        return pte, self.cfg.walk_latency
