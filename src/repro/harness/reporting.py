"""Plain-text rendering of experiment outputs.

The benchmark harness prints each table/figure the way the paper reports
it: rows per workload, series per scheme/parameter.  Everything here is
dependency-free string formatting.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence


def _fmt(value, width: int = 10, precision: int = 3) -> str:
    if isinstance(value, float):
        return f"{value:>{width}.{precision}f}"
    return f"{str(value):>{width}}"


def format_table(
    rows: Sequence[Mapping],
    columns: Optional[Sequence[str]] = None,
    title: str = "",
    precision: int = 3,
) -> str:
    """Render a list of dict rows as an aligned text table."""
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    widths = {
        c: max(len(c), max(len(_fmt(r.get(c, ""), 1, precision).strip()) for r in rows))
        for c in columns
    }
    lines: List[str] = []
    if title:
        lines.append(title)
    header = "  ".join(c.rjust(widths[c]) for c in columns)
    lines.append(header)
    lines.append("-" * len(header))
    for row in rows:
        lines.append(
            "  ".join(
                _fmt(row.get(c, ""), widths[c], precision).rjust(widths[c])
                for c in columns
            )
        )
    return "\n".join(lines)


def render_series(
    series: Mapping[str, Mapping],
    x_label: str = "x",
    title: str = "",
    precision: int = 3,
) -> str:
    """Render ``{series_name: {x: y}}`` as one table with x as rows."""
    xs = sorted({x for ys in series.values() for x in ys})
    rows = []
    for x in xs:
        row = {x_label: x}
        for name, ys in series.items():
            row[name] = ys.get(x, "")
        rows.append(row)
    return format_table(rows, [x_label] + list(series), title, precision)


def rows_to_series(
    rows: Iterable[Mapping], key: str, x: str, y: str
) -> Dict[str, Dict]:
    """Group flat rows into ``{row[key]: {row[x]: row[y]}}``."""
    out: Dict[str, Dict] = {}
    for row in rows:
        out.setdefault(str(row[key]), {})[row[x]] = row[y]
    return out
