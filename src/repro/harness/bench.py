"""Perf-regression benchmark for the simulator core.

Measures end-to-end throughput of the reference comparison (nomad + tdc
on ``cact``) the way the pre-optimization baseline was captured: a fresh
machine is built per repetition and only ``Machine.run()`` -- the event
loop -- is timed.  Two scenario sizes exist: ``full`` (the committed
speedup claim) and ``quick`` (CI perf smoke).

Absolute runs/sec are machine-dependent, so every report also runs a
fixed pure-Python *normalizer* loop and reports throughput relative to
it.  Comparing ``normalized`` values cancels out how fast the host
happens to be, which is what lets CI compare against numbers committed
from a different machine (``python -m repro bench --check``).

A second family of scenarios (``--sweep``) benchmarks the *campaign*
layer instead of the bare engine: a seeds-axis scheme grid is run
through ``run_campaign`` end-to-end, which is the path machine-snapshot
forking amortizes.  Its frozen ``baseline`` entries were captured with
snapshot forking disabled (``configure_snapshots(0)``) -- the
rebuild-every-run behavior that predates the snapshot cache.

Results are stored in ``BENCH_engine.json`` at the repo root; the
``baseline`` entries in that file are frozen pre-optimization
measurements and must not be regenerated (``--update`` only rewrites the
``current`` entries).
"""

from __future__ import annotations

import cProfile
import io
import json
import pstats
import time
from typing import Dict, List, Optional, Tuple

from repro.config.system import scaled_system
from repro.system.builder import build_machine

BENCH_SCHEMES = ("nomad", "tdc")
BENCH_WORKLOAD = "cact"
BENCH_SEED = 1

# (ops per core, cores, DC megabytes, repetitions of the scheme pair).
SCENARIOS: Dict[str, Tuple[int, int, int, int]] = {
    "full": (6000, 4, 64, 3),
    "quick": (1500, 2, 16, 2),
}

# -- sweep (campaign amortization) scenarios ----------------------------------
#
# Where the engine scenarios above time the bare event loop, the sweep
# scenarios time ``run_campaign`` end-to-end over a seeds-axis grid --
# the shape every figure reproduction sweeps -- once with machine
# snapshots enabled (the amortized path) and, for the frozen baseline
# entries, once with ``configure_snapshots(0)`` (the rebuild-every-run
# pre-snapshot path).  Schemes with DRAM-cache metadata are the ones
# whose builds amortize; ``baseline``/``ideal`` are fork-unprofitable
# by design (see repro.snapshot) and excluded.
SWEEP_SCHEMES = ("tid", "tdc", "nomad")

# (ops per core, cores, DC megabytes, number of seeds).  The seeds
# axis is what amortizes: one build+snapshot per scheme serves every
# seed, so more seeds move the campaign closer to the marginal
# fork+run cost.
SWEEP_SCENARIOS: Dict[str, Tuple[int, int, int, int]] = {
    "sweep": (400, 2, 48, 16),
    "sweep_quick": (300, 2, 32, 12),
}

# CI gate: fail when normalized throughput drops more than this fraction
# below the committed ``current`` entry; smaller drops only warn.
REGRESSION_FAIL_FRAC = 0.25

# -- observability overhead scenarios -----------------------------------------
#
# ``--obs`` runs the same distributed sweep twice through an in-process
# broker + runner-thread fleet (the chaos-harness wiring, minus faults):
# once with observability torn down and once with logging + /metrics +
# tracing fully enabled against file sinks.  The guard is on the *ratio*
# of the two wall clocks, so host speed cancels out.
OBS_SCHEMES = ("baseline", "tdc", "nomad")

# (ops per core, cores, DC megabytes, number of seeds).
OBS_SCENARIOS: Dict[str, Tuple[int, int, int, int]] = {
    "service_obs": (600, 2, 8, 4),
    "service_obs_quick": (300, 2, 8, 4),
}

# CI gate: fail when the obs-enabled sweep is more than this fraction
# slower than the obs-disabled one.
OBS_OVERHEAD_FAIL_FRAC = 0.05


def normalizer_score(n: int = 300_000) -> float:
    """Ops/sec of a fixed dict+int loop; calibrates the host's speed.

    This function is part of the committed-numbers contract: changing it
    invalidates every ``normalized`` value in BENCH_engine.json.
    """
    best = 0.0
    for _ in range(3):
        t0 = time.perf_counter()
        d = {}
        acc = 0
        for i in range(n):
            d[i & 1023] = acc
            acc += i ^ (acc >> 3)
        rate = n / (time.perf_counter() - t0)
        if rate > best:
            best = rate
    return best


def _measure(ops: int, cores: int, dc_mb: int, reps: int) -> Tuple[List[float], int]:
    """Time ``reps`` nomad+tdc pairs; returns (per-run walls, total events)."""
    walls: List[float] = []
    events = 0
    for _rep in range(reps):
        for scheme in BENCH_SCHEMES:
            cfg = scaled_system(num_cores=cores, dc_megabytes=dc_mb)
            machine = build_machine(
                scheme, workload_name=BENCH_WORKLOAD, cfg=cfg,
                num_mem_ops=ops, seed=BENCH_SEED,
            )
            t0 = time.perf_counter()
            machine.run()
            walls.append(time.perf_counter() - t0)
            events += machine.sim.events_processed
    return walls, events


def _profile_phases(ops: int, cores: int, dc_mb: int, top: int = 12) -> Dict[str, list]:
    """cProfile the build and run phases separately; top-N by tottime."""
    from repro.workloads.synthetic import clear_trace_cache

    out: Dict[str, list] = {}
    clear_trace_cache()  # so the build phase profiles real generation
    cfg = scaled_system(num_cores=cores, dc_megabytes=dc_mb)

    profiler = cProfile.Profile()
    profiler.enable()
    machine = build_machine(
        BENCH_SCHEMES[0], workload_name=BENCH_WORKLOAD, cfg=cfg,
        num_mem_ops=ops, seed=BENCH_SEED,
    )
    profiler.disable()
    out["build"] = _top_entries(profiler, top)

    profiler = cProfile.Profile()
    profiler.enable()
    machine.run()
    profiler.disable()
    out["run"] = _top_entries(profiler, top)
    return out


def _top_entries(profiler: cProfile.Profile, top: int) -> list:
    stats = pstats.Stats(profiler, stream=io.StringIO())
    rows = []
    for func, (cc, nc, tt, ct, _callers) in stats.stats.items():
        filename, lineno, name = func
        rows.append({
            "function": f"{filename.rsplit('/', 1)[-1]}:{lineno}:{name}",
            "ncalls": nc,
            "tottime": round(tt, 4),
            "cumtime": round(ct, 4),
        })
    rows.sort(key=lambda r: r["tottime"], reverse=True)
    return rows[:top]


def run_scenario(name: str) -> Dict:
    """One scenario's measurement block (the ``current`` entry shape)."""
    ops, cores, dc_mb, reps = SCENARIOS[name]
    normalizer = normalizer_score()
    walls, events = _measure(ops, cores, dc_mb, reps)
    total = sum(walls)
    runs_per_sec = len(walls) / total
    return {
        "params": {"ops": ops, "cores": cores, "dc_mb": dc_mb, "reps": reps,
                   "schemes": list(BENCH_SCHEMES), "workload": BENCH_WORKLOAD,
                   "seed": BENCH_SEED},
        "runs_per_sec": runs_per_sec,
        "events_per_sec": events / total,
        "events": events,
        "wall_total_sec": total,
        "normalizer_ops_per_sec": normalizer,
        "normalized": runs_per_sec / normalizer,
    }


def _sweep_configs(name: str) -> list:
    from repro.harness.runner import RunConfig

    ops, cores, dc_mb, seeds = SWEEP_SCENARIOS[name]
    return [
        RunConfig(scheme=scheme, workload=BENCH_WORKLOAD, num_mem_ops=ops,
                  num_cores=cores, dc_megabytes=dc_mb, seed=seed)
        for scheme in SWEEP_SCHEMES
        for seed in range(1, seeds + 1)
    ]


def run_sweep_scenario(name: str, amortize: bool = True,
                       reps: int = 2) -> Dict:
    """Campaign throughput over a seeds-axis scheme grid.

    ``amortize=False`` measures the rebuild-every-run path (snapshot
    forking disabled) -- that is how the frozen ``baseline`` sweep
    entries in BENCH_engine.json were captured.  Both modes start from
    cold caches and measure the whole campaign wall clock, so trace
    generation and the event loop are identical on both sides; the
    delta is exactly what snapshot forking amortizes.  The campaign
    runs ``reps`` times, every rep fully cold, and the fastest rep is
    reported (same best-of policy as :func:`normalizer_score`).
    """
    import gc

    from repro.campaign import run_campaign
    from repro.harness import runner
    from repro.workloads.synthetic import clear_trace_cache

    configs = _sweep_configs(name)
    # Campaigns leave their dead machines as cyclic garbage; a full
    # collect before each timed section keeps measurements independent
    # of whatever ran earlier in this process (the garbage otherwise
    # inflates every GC pass during the next campaign -- and even the
    # normalizer loop).
    gc.collect()
    normalizer = normalizer_score()
    prev_store = runner.set_result_store(None)
    prev_snaps = runner.configure_snapshots(8 if amortize else 0)
    wall = None
    campaign = None
    try:
        for _rep in range(reps):
            runner.configure_snapshots(8 if amortize else 0)
            runner.clear_cache()
            clear_trace_cache()
            gc.collect()
            t0 = time.perf_counter()
            attempt = run_campaign(configs, jobs=1)
            elapsed = time.perf_counter() - t0
            if wall is None or elapsed < wall:
                wall = elapsed
                campaign = attempt
    finally:
        runner.configure_snapshots(prev_snaps)
        runner.set_result_store(prev_store)
        runner.clear_cache()
        clear_trace_cache()
    failed = [r for r in campaign.records if r.status not in ("completed", "cached")]
    if failed:
        raise RuntimeError(
            f"sweep bench {name!r}: {len(failed)} of {len(configs)} runs "
            f"failed (first: {failed[0].error})"
        )
    snap = campaign.summary.snapshot
    forks = snap.get("hits", 0)
    builds = snap.get("misses", 0)
    ops, cores, dc_mb, seeds = SWEEP_SCENARIOS[name]
    runs_per_sec = len(configs) / wall
    return {
        "params": {"ops": ops, "cores": cores, "dc_mb": dc_mb, "seeds": seeds,
                   "schemes": list(SWEEP_SCHEMES), "workload": BENCH_WORKLOAD,
                   "amortize": amortize, "jobs": 1},
        "runs": len(configs),
        "runs_per_sec": runs_per_sec,
        "wall_total_sec": wall,
        "snapshot_forks": forks,
        "snapshot_builds": builds,
        "snapshot_hit_rate": forks / max(1, forks + builds),
        "normalizer_ops_per_sec": normalizer,
        "normalized": runs_per_sec / normalizer,
    }


def _run_service_campaign(configs, store_root, poll_s: float = 0.05,
                          runners: int = 2) -> float:
    """One distributed campaign through an in-process service; wall secs."""
    import threading

    from repro.campaign.store import ResultStore
    from repro.service.broker import Broker, BrokerServer
    from repro.service.coordinator import run_distributed_campaign
    from repro.service.runner import runner_loop

    broker = Broker(store_root, lease_s=60.0)
    server = BrokerServer(broker).start()
    stop = threading.Event()
    threads = []
    try:
        for i in range(runners):
            t = threading.Thread(
                target=runner_loop, args=(server.url,),
                kwargs=dict(jobs=1, runner_id=f"bench-r{i}", poll_s=poll_s,
                            stop=stop, give_up_after_s=None,
                            install_signal_handlers=False),
                name=f"bench-runner-{i}", daemon=True,
            )
            t.start()
            threads.append(t)
        t0 = time.perf_counter()
        campaign = run_distributed_campaign(
            configs, server.url, store=ResultStore(store_root),
            poll_s=poll_s, max_wait_s=600.0, progress=None,
        )
        wall = time.perf_counter() - t0
    finally:
        stop.set()
        for t in threads:
            t.join(timeout=10)
        server.shutdown()
        broker.journal.close()
    bad = [r for r in campaign.records if r.status not in ("completed", "cached")]
    if bad:
        raise RuntimeError(
            f"obs bench campaign: {len(bad)} of {len(configs)} runs failed "
            f"(first: {bad[0].error})"
        )
    return wall


def run_obs_bench(quick: bool = False, reps: Optional[int] = None) -> Dict:
    """Distributed-sweep wall clock with observability off vs fully on.

    The campaign wall is dominated by scheduler/poll jitter at this
    scale, so the statistic is built to cancel it rather than outrun
    it: one untimed warmup campaign first (so neither side pays the
    cold trace cache), then ``reps`` interleaved repetitions whose
    off/on order alternates every rep (so slow drift -- thermal, cache,
    CPU clocks -- hits both sides alike), scored by the *median* rep
    per mode (an extreme like min/max re-imports the very jitter the
    interleaving cancelled).  Every campaign starts from a fresh store
    and a cold run memo, so both modes do the same simulation work and
    the delta is exactly the obs layer: structured logs, /metrics
    counters, and span files on every request.
    """
    import shutil
    import statistics
    import tempfile

    from repro import obs
    from repro.harness import runner as _runner
    from repro.harness.runner import RunConfig

    if reps is None:
        reps = 4 if quick else 5

    name = "service_obs_quick" if quick else "service_obs"
    ops, cores, dc_mb, seeds = OBS_SCENARIOS[name]
    configs = [
        RunConfig(scheme=scheme, workload="sop", num_mem_ops=ops,
                  num_cores=cores, dc_megabytes=dc_mb, seed=seed)
        for scheme in OBS_SCHEMES
        for seed in range(1, seeds + 1)
    ]
    normalizer = normalizer_score()
    previous = obs.current_config()
    walls: Dict[str, List[float]] = {"off": [], "on": []}
    workdir = tempfile.mkdtemp(prefix="repro-obs-bench-")
    try:
        obs.configure(None)
        _runner.clear_cache()
        _run_service_campaign(configs, f"{workdir}/warmup")
        for rep in range(max(1, reps)):
            order = ("off", "on") if rep % 2 == 0 else ("on", "off")
            for mode in order:
                store_root = f"{workdir}/{mode}-{rep}"
                if mode == "on":
                    obs.configure(obs.ObsConfig(
                        component="bench", obs_dir=f"{store_root}-obs",
                    ))
                else:
                    obs.configure(None)
                _runner.clear_cache()
                walls[mode].append(_run_service_campaign(configs, store_root))
    finally:
        obs.configure(previous)
        _runner.clear_cache()
        shutil.rmtree(workdir, ignore_errors=True)

    median = {mode: statistics.median(ws) for mode, ws in walls.items()}

    def _mad(ws: List[float], med: float) -> float:
        return statistics.median(abs(w - med) for w in ws)

    # Relative rep-to-rep noise floor (median absolute deviation of both
    # modes); the regression gate refuses to fail on an overhead that the
    # measurement itself cannot resolve.
    noise_frac = (
        _mad(walls["off"], median["off"]) + _mad(walls["on"], median["on"])
    ) / median["off"]
    report: Dict = {"scenarios": {}}
    for mode in ("off", "on"):
        runs_per_sec = len(configs) / median[mode]
        report["scenarios"][f"{name}_{mode}"] = {
            "params": {"ops": ops, "cores": cores, "dc_mb": dc_mb,
                       "seeds": seeds, "schemes": list(OBS_SCHEMES),
                       "workload": "sop", "runners": 2, "reps": reps,
                       "obs": mode == "on"},
            "runs": len(configs),
            "runs_per_sec": runs_per_sec,
            "wall_total_sec": median[mode],
            "wall_reps_sec": [round(w, 4) for w in walls[mode]],
            "normalizer_ops_per_sec": normalizer,
            "normalized": runs_per_sec / normalizer,
        }
    report["obs_overhead_frac"] = median["on"] / median["off"] - 1.0
    report["obs_noise_frac"] = noise_frac
    return report


def run_bench(quick: bool = False, profile: bool = True,
              sweep: bool = False) -> Dict:
    """Measure the selected scenarios; returns the report dict.

    ``sweep=True`` selects the campaign-amortization scenarios instead
    of the engine ones (profiling is an engine-side concern and is
    skipped there).
    """
    report: Dict = {"scenarios": {}}
    if sweep:
        names = ["sweep_quick"] if quick else ["sweep", "sweep_quick"]
        for name in names:
            report["scenarios"][name] = run_sweep_scenario(name)
        return report
    names = ["quick"] if quick else ["full", "quick"]
    for name in names:
        report["scenarios"][name] = run_scenario(name)
    if profile:
        ops, cores, dc_mb, _ = SCENARIOS["quick" if quick else "full"]
        report["profile"] = _profile_phases(ops, cores, dc_mb)
    return report


# -- committed-report handling -------------------------------------------------


def load_report(path: str) -> Dict:
    with open(path) as fh:
        return json.load(fh)


def check_regression(committed: Dict, measured: Dict) -> List[str]:
    """Compare measured scenarios to a committed report.

    Returns a list of problem strings; entries starting with ``FAIL``
    gate CI, ``warn`` entries do not.  The comparison is on *normalized*
    throughput so a slower/faster CI host cancels out.
    """
    problems: List[str] = []
    for name, entry in measured["scenarios"].items():
        ref = committed.get("scenarios", {}).get(name, {}).get("current")
        if ref is None:
            problems.append(f"warn: no committed 'current' entry for {name!r}")
            continue
        got = entry["normalized"]
        want = ref["normalized"]
        if want <= 0:
            problems.append(f"warn: committed normalized for {name!r} is {want}")
            continue
        drop = 1.0 - got / want
        if drop > REGRESSION_FAIL_FRAC:
            problems.append(
                f"FAIL: {name} normalized throughput {got:.3e} is "
                f"{drop:.0%} below committed {want:.3e}"
            )
        elif drop > 0.10:
            problems.append(
                f"warn: {name} normalized throughput {got:.3e} is "
                f"{drop:.0%} below committed {want:.3e}"
            )
    frac = measured.get("obs_overhead_frac")
    if frac is not None and frac > OBS_OVERHEAD_FAIL_FRAC:
        # Campaign wall clock at bench scale carries scheduler/poll
        # jitter far above the budget; only fail when the overhead also
        # clears the run's own rep-noise floor, so the gate trips on a
        # real hot-path regression (which lands at tens of percent, not
        # five) and not on a noisy host.
        noise = float(measured.get("obs_noise_frac") or 0.0)
        if frac > max(OBS_OVERHEAD_FAIL_FRAC, 3.0 * noise):
            problems.append(
                f"FAIL: obs-enabled service sweep is {frac:.1%} slower than "
                f"obs-off (budget {OBS_OVERHEAD_FAIL_FRAC:.0%}, "
                f"noise floor {noise:.1%})"
            )
        else:
            problems.append(
                f"warn: obs overhead {frac:.1%} exceeds the "
                f"{OBS_OVERHEAD_FAIL_FRAC:.0%} budget but is within the "
                f"rep-noise floor ({noise:.1%} MAD); not failing"
            )
    return problems


def update_report(path: str, measured: Dict) -> Dict:
    """Rewrite ``current`` entries (and speedups) in the committed file.

    ``baseline`` entries are frozen pre-optimization measurements and are
    left untouched.
    """
    committed = load_report(path)
    for name, entry in measured["scenarios"].items():
        block = committed.setdefault("scenarios", {}).setdefault(name, {})
        block["current"] = entry
        base = block.get("baseline")
        if base and base.get("normalized"):
            block["speedup_normalized"] = entry["normalized"] / base["normalized"]
    if "profile" in measured:
        committed["profile"] = measured["profile"]
    if "obs_overhead_frac" in measured:
        committed["obs_overhead"] = {
            "frac": measured["obs_overhead_frac"],
            "noise_frac": measured.get("obs_noise_frac"),
            "fail_frac": OBS_OVERHEAD_FAIL_FRAC,
        }
    with open(path, "w") as fh:
        json.dump(committed, fh, indent=1, sort_keys=True)
        fh.write("\n")
    return committed
