"""One function per paper table/figure.

Every function takes an optional base :class:`RunConfig` so callers
(benchmarks, examples) can trade accuracy for time by shrinking traces,
and returns plain dict/list structures that the reporting module renders
and the benchmark suite asserts shape-claims against.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.analysis.classification import classify_rmhb
from repro.analysis.latency_model import LatencyModel
from repro.config.schemes import BackendTopology, NomadConfig
from repro.config.system import scaled_system
from repro.harness.runner import RunConfig, run_matrix, run_workload
from repro.workloads.presets import CLASS_OF, PRESETS, WORKLOAD_CLASSES, workloads_in_class

ALL_WORKLOADS: List[str] = list(PRESETS)
DC_SCHEMES: List[str] = ["tid", "tdc", "nomad", "ideal"]
# Fig. 2's six high-LLC-MPMS benchmarks, ordered by descending RMHB.
FIG2_WORKLOADS: List[str] = ["cact", "sssp", "bwav", "mcf", "bc", "pr"]


def _base(base: Optional[RunConfig]) -> RunConfig:
    return base if base is not None else RunConfig(scheme="ideal", workload="cact")


def _offpackage_peak(base: RunConfig) -> float:
    cfg = scaled_system(num_cores=base.num_cores, dc_megabytes=base.dc_megabytes)
    return cfg.ddr.peak_gbps()


# ---------------------------------------------------------------------------
# Table I: workload characteristics under the ideal configuration
# ---------------------------------------------------------------------------

def experiment_table1(
    base: Optional[RunConfig] = None, workloads: Optional[Sequence[str]] = None
) -> List[dict]:
    base = _base(base)
    peak = _offpackage_peak(base)
    workloads = list(workloads or ALL_WORKLOADS)
    results = run_matrix(["unthrottled"], workloads, base)
    rows = []
    for name in workloads:
        res = results[("unthrottled", name)]
        rows.append(
            {
                "workload": name,
                "paper_class": CLASS_OF[name],
                "measured_class": classify_rmhb(res.rmhb_gbps, peak),
                "rmhb_gbps": res.rmhb_gbps,
                "llc_mpms": res.llc_mpms,
                "footprint_mb": PRESETS[name].footprint_ratio
                * base.dc_megabytes
                / base.num_cores,
            }
        )
    rows.sort(key=lambda r: -r["rmhb_gbps"])
    return rows


# ---------------------------------------------------------------------------
# Fig. 2: TDC IPC relative to TiD for six high-MPMS benchmarks
# ---------------------------------------------------------------------------

def experiment_fig02(
    base: Optional[RunConfig] = None, workloads: Optional[Sequence[str]] = None
) -> List[dict]:
    base = _base(base)
    workloads = list(workloads or FIG2_WORKLOADS)
    results = run_matrix(["tdc", "tid", "unthrottled"], workloads, base)
    rows = []
    for name in workloads:
        tdc = results[("tdc", name)]
        tid = results[("tid", name)]
        ideal = results[("unthrottled", name)]
        rows.append(
            {
                "workload": name,
                "paper_class": CLASS_OF[name],
                "tdc_over_tid": tdc.ipc / tid.ipc if tid.ipc else 0.0,
                "rmhb_gbps": ideal.rmhb_gbps,
            }
        )
    rows.sort(key=lambda r: -r["rmhb_gbps"])
    return rows


# ---------------------------------------------------------------------------
# Fig. 7: analytic effective access latency
# ---------------------------------------------------------------------------

def experiment_fig07(base: Optional[RunConfig] = None) -> Dict[str, Dict[str, int]]:
    base = _base(base)
    cfg = scaled_system(num_cores=base.num_cores, dc_megabytes=base.dc_megabytes)
    return LatencyModel.from_config(cfg).table()


# ---------------------------------------------------------------------------
# Fig. 9: IPC relative to baseline + average DC access time
# ---------------------------------------------------------------------------

def experiment_fig09(
    base: Optional[RunConfig] = None,
    workloads: Optional[Sequence[str]] = None,
    schemes: Optional[Sequence[str]] = None,
) -> List[dict]:
    from repro.campaign import speedup_matrix

    base = _base(base)
    workloads = list(workloads or ALL_WORKLOADS)
    schemes = list(schemes or DC_SCHEMES)
    results = speedup_matrix(schemes, workloads, base, baseline="baseline")
    rows = []
    for wl in workloads:
        row = {"workload": wl, "paper_class": CLASS_OF[wl]}
        for scheme in schemes:
            res, rel = results[(scheme, wl)]
            row[f"{scheme}_ipc_rel"] = rel
            row[f"{scheme}_dc_access_time"] = res.dc_access_time
        rows.append(row)
    return rows


# ---------------------------------------------------------------------------
# Fig. 10: on-package bandwidth breakdown + row buffer hit rate
# ---------------------------------------------------------------------------

def experiment_fig10(
    base: Optional[RunConfig] = None,
    workloads: Optional[Sequence[str]] = None,
    schemes: Optional[Sequence[str]] = None,
) -> List[dict]:
    base = _base(base)
    workloads = list(workloads or ALL_WORKLOADS)
    schemes = list(schemes or DC_SCHEMES)
    results = run_matrix(schemes, workloads, base)
    rows = []
    for wl in workloads:
        for scheme in schemes:
            res = results[(scheme, wl)]
            total = sum(res.hbm_bytes_by_class.values()) or 1
            rows.append(
                {
                    "workload": wl,
                    "scheme": scheme,
                    "hbm_gbps": res.hbm_bandwidth_gbps,
                    "demand_frac": res.hbm_bytes_by_class.get("DEMAND", 0) / total,
                    "metadata_frac": res.hbm_bytes_by_class.get("METADATA", 0) / total,
                    "fill_frac": res.hbm_bytes_by_class.get("FILL", 0) / total,
                    "writeback_frac": res.hbm_bytes_by_class.get("WRITEBACK", 0) / total,
                    "row_hit_rate": res.hbm_row_hit_rate,
                }
            )
    return rows


# ---------------------------------------------------------------------------
# Fig. 11: stall-cycle ratios + tag management latency (TDC vs NOMAD)
# ---------------------------------------------------------------------------

def experiment_fig11(
    base: Optional[RunConfig] = None, workloads: Optional[Sequence[str]] = None
) -> List[dict]:
    base = _base(base)
    workloads = list(workloads or ALL_WORKLOADS)
    results = run_matrix(["tdc", "nomad"], workloads, base)
    rows = []
    for wl in workloads:
        tdc = results[("tdc", wl)]
        nomad = results[("nomad", wl)]
        rows.append(
            {
                "workload": wl,
                "paper_class": CLASS_OF[wl],
                "tdc_stall_ratio": tdc.os_stall_ratio,
                "nomad_stall_ratio": nomad.os_stall_ratio,
                "tdc_tag_latency": tdc.tag_mgmt_latency or 0.0,
                "nomad_tag_latency": nomad.tag_mgmt_latency or 0.0,
                "nomad_buffer_hit_ratio": nomad.buffer_hit_ratio or 0.0,
            }
        )
    return rows


# ---------------------------------------------------------------------------
# Fig. 12: per-class IPC + off-package bandwidth vs #PCSHRs
# ---------------------------------------------------------------------------

def experiment_fig12(
    base: Optional[RunConfig] = None,
    pcshr_counts: Sequence[int] = (1, 2, 4, 8, 16, 32),
    workloads_per_class: int = 1,
) -> List[dict]:
    base = _base(base)
    rows = []
    for klass in WORKLOAD_CLASSES:
        names = workloads_in_class(klass)[:workloads_per_class]
        for n in pcshr_counts:
            rels, bws = [], []
            for wl in names:
                nomad_cfg = NomadConfig(num_pcshrs=n)
                res = run_workload(
                    base.with_(scheme="nomad", workload=wl, nomad_cfg=nomad_cfg)
                )
                baseline = run_workload(base.with_(scheme="baseline", workload=wl))
                rels.append(res.speedup_over(baseline))
                bws.append(res.ddr_bandwidth_gbps)
            rows.append(
                {
                    "class": klass,
                    "pcshrs": n,
                    "ipc_rel_baseline": sum(rels) / len(rels),
                    "ddr_gbps": sum(bws) / len(bws),
                }
            )
    return rows


# ---------------------------------------------------------------------------
# Fig. 13: Excess-class IPC vs #PCSHRs for different core counts
# ---------------------------------------------------------------------------

def experiment_fig13(
    base: Optional[RunConfig] = None,
    core_counts: Sequence[int] = (2, 4, 8),
    pcshr_counts: Sequence[int] = (2, 4, 8, 16, 32),
    workloads: Sequence[str] = ("cact",),
) -> List[dict]:
    base = _base(base)
    rows = []
    for cores in core_counts:
        ref = None
        for n in sorted(pcshr_counts, reverse=True):
            ipcs = []
            for wl in workloads:
                res = run_workload(
                    base.with_(
                        scheme="nomad",
                        workload=wl,
                        num_cores=cores,
                        nomad_cfg=NomadConfig(num_pcshrs=n),
                    )
                )
                ipcs.append(res.ipc)
            mean_ipc = sum(ipcs) / len(ipcs)
            if ref is None:
                ref = mean_ipc  # the largest PCSHR count is the reference
            rows.append(
                {
                    "cores": cores,
                    "pcshrs": n,
                    "ipc_rel_32": mean_ipc / ref if ref else 0.0,
                }
            )
    rows.sort(key=lambda r: (r["cores"], r["pcshrs"]))
    return rows


# ---------------------------------------------------------------------------
# Fig. 14: cact (steady) vs libq (bursty) PCSHR contention
# ---------------------------------------------------------------------------

def experiment_fig14(
    base: Optional[RunConfig] = None,
    pcshr_counts: Sequence[int] = (1, 2, 4, 8, 16, 32),
    workloads: Sequence[str] = ("cact", "libq"),
) -> List[dict]:
    from repro.campaign import GridSpec, run_campaign

    base = _base(base)
    grid = GridSpec(
        schemes=("nomad",),
        workloads=tuple(workloads),
        base=base,
        axes={"num_pcshrs": tuple(pcshr_counts)},
    )
    campaign = run_campaign(grid)
    rows = []
    for rec in campaign.records:
        res = rec.result
        if res is None:
            raise RuntimeError(f"fig14 run failed: {rec.error}")
        rows.append(
            {
                "workload": rec.config.workload,
                "pcshrs": rec.config.nomad_cfg.num_pcshrs,
                "stall_ratio": res.os_stall_ratio,
                "tag_latency": res.tag_mgmt_latency or 0.0,
                "ipc": res.ipc,
            }
        )
    return rows


# ---------------------------------------------------------------------------
# Fig. 15: area-optimized (n PCSHRs, m page copy buffers)
# ---------------------------------------------------------------------------

def experiment_fig15(
    base: Optional[RunConfig] = None,
    combos: Sequence[Tuple[int, int]] = ((8, 8), (16, 8), (32, 8), (32, 16), (32, 32)),
    workloads: Sequence[str] = ("libq", "gems"),
) -> List[dict]:
    base = _base(base)
    rows = []
    for wl in workloads:
        baseline = run_workload(base.with_(scheme="baseline", workload=wl))
        for n, m in combos:
            res = run_workload(
                base.with_(
                    scheme="nomad",
                    workload=wl,
                    nomad_cfg=NomadConfig(num_pcshrs=n, num_copy_buffers=m),
                )
            )
            rows.append(
                {
                    "workload": wl,
                    "pcshrs": n,
                    "buffers": m,
                    "ipc_rel_baseline": res.speedup_over(baseline),
                    "tag_latency": res.tag_mgmt_latency or 0.0,
                }
            )
    return rows


# ---------------------------------------------------------------------------
# Fig. 16: centralized vs distributed back-ends
# ---------------------------------------------------------------------------

def experiment_fig16(
    base: Optional[RunConfig] = None,
    pcshr_counts: Sequence[int] = (4, 8, 16, 32),
    workloads: Sequence[str] = ("cact", "sssp"),
) -> List[dict]:
    base = _base(base)
    rows = []
    for topology in (BackendTopology.CENTRALIZED, BackendTopology.DISTRIBUTED):
        for n in pcshr_counts:
            rels, lats = [], []
            for wl in workloads:
                baseline = run_workload(base.with_(scheme="baseline", workload=wl))
                res = run_workload(
                    base.with_(
                        scheme="nomad",
                        workload=wl,
                        nomad_cfg=NomadConfig(num_pcshrs=n, topology=topology),
                    )
                )
                rels.append(res.speedup_over(baseline))
                lats.append(res.tag_mgmt_latency or 0.0)
            rows.append(
                {
                    "topology": topology.value,
                    "pcshrs": n,
                    "ipc_rel_baseline": sum(rels) / len(rels),
                    "tag_latency": sum(lats) / len(lats),
                }
            )
    return rows


# ---------------------------------------------------------------------------
# Section IV-B5 summary claims
# ---------------------------------------------------------------------------

def experiment_summary(
    base: Optional[RunConfig] = None, workloads: Optional[Sequence[str]] = None
) -> dict:
    """NOMAD vs TDC/TiD aggregate gains + the buffer-hit claim."""
    base = _base(base)
    workloads = list(workloads or ALL_WORKLOADS)
    results = run_matrix(["baseline", "tid", "tdc", "nomad"], workloads, base)
    ipc_vs_tdc, ipc_vs_tid, stall_red, buffer_hits = [], [], [], []
    for wl in workloads:
        nomad = results[("nomad", wl)]
        tdc = results[("tdc", wl)]
        tid = results[("tid", wl)]
        if tdc.ipc:
            ipc_vs_tdc.append(nomad.ipc / tdc.ipc)
        if tid.ipc:
            ipc_vs_tid.append(nomad.ipc / tid.ipc)
        if tdc.os_stall_ratio > 0:
            stall_red.append(
                1.0 - nomad.os_stall_ratio / tdc.os_stall_ratio
            )
        if nomad.buffer_hit_ratio is not None and nomad.buffer_hit_ratio > 0:
            buffer_hits.append(nomad.buffer_hit_ratio)

    def _gmean(xs: List[float]) -> float:
        if not xs:
            return 0.0
        prod = 1.0
        for x in xs:
            prod *= max(x, 1e-12)
        return prod ** (1.0 / len(xs))

    return {
        "ipc_gain_over_tdc": _gmean(ipc_vs_tdc) - 1.0,
        "ipc_gain_over_tid": _gmean(ipc_vs_tid) - 1.0,
        "stall_reduction_vs_tdc": sum(stall_red) / len(stall_red) if stall_red else 0.0,
        "buffer_hit_ratio": sum(buffer_hits) / len(buffer_hits) if buffer_hits else 0.0,
        "paper_ipc_gain_over_tdc": 0.167,
        "paper_ipc_gain_over_tid": 0.255,
        "paper_stall_reduction_vs_tdc": 0.761,
        "paper_buffer_hit_ratio": 0.916,
    }
