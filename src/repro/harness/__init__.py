"""Experiment harness: one entry point per paper table/figure."""

from repro.harness.runner import (
    RunConfig,
    cache_stats,
    clear_cache,
    clear_snapshot_cache,
    configure_snapshots,
    get_result_store,
    run_matrix,
    run_workload,
    set_result_store,
)
from repro.harness.experiments import (
    experiment_fig02,
    experiment_fig07,
    experiment_fig09,
    experiment_fig10,
    experiment_fig11,
    experiment_fig12,
    experiment_fig13,
    experiment_fig14,
    experiment_fig15,
    experiment_fig16,
    experiment_summary,
    experiment_table1,
)
from repro.harness.reporting import format_table, render_series

__all__ = [
    "RunConfig",
    "cache_stats",
    "clear_cache",
    "clear_snapshot_cache",
    "configure_snapshots",
    "get_result_store",
    "set_result_store",
    "experiment_fig02",
    "experiment_fig07",
    "experiment_fig09",
    "experiment_fig10",
    "experiment_fig11",
    "experiment_fig12",
    "experiment_fig13",
    "experiment_fig14",
    "experiment_fig15",
    "experiment_fig16",
    "experiment_summary",
    "experiment_table1",
    "format_table",
    "render_series",
    "run_matrix",
    "run_workload",
]
