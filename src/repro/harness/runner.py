"""Run-one / run-many drivers with caching inside a process.

Experiments share (scheme, workload) runs -- e.g., Fig. 9 and Fig. 11
both need TDC and NOMAD on every workload -- so the runner memoizes
results by their full parameter key within the process.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, List, Optional, Tuple

from repro.config.schemes import NomadConfig, TDCConfig, TiDConfig
from repro.config.system import SystemConfig, scaled_system
from repro.system.builder import build_machine
from repro.system.machine import MachineResult


@dataclass(frozen=True)
class RunConfig:
    """Everything identifying one simulation run."""

    scheme: str
    workload: str
    num_mem_ops: int = 10_000
    num_cores: int = 4
    dc_megabytes: int = 64
    seed: int = 1
    prewarm: bool = True
    nomad_cfg: Optional[NomadConfig] = None
    tdc_cfg: Optional[TDCConfig] = None
    tid_cfg: Optional[TiDConfig] = None

    def with_(self, **overrides) -> "RunConfig":
        return replace(self, **overrides)


_CACHE: Dict[RunConfig, MachineResult] = {}


def clear_cache() -> None:
    _CACHE.clear()


def run_workload(cfg: RunConfig) -> MachineResult:
    """Run (or fetch the memoized result of) one configuration."""
    cached = _CACHE.get(cfg)
    if cached is not None:
        return cached
    system = scaled_system(num_cores=cfg.num_cores, dc_megabytes=cfg.dc_megabytes)
    machine = build_machine(
        cfg.scheme,
        workload_name=cfg.workload,
        cfg=system,
        num_mem_ops=cfg.num_mem_ops,
        seed=cfg.seed,
        prewarm=cfg.prewarm,
        nomad_cfg=cfg.nomad_cfg,
        tdc_cfg=cfg.tdc_cfg,
        tid_cfg=cfg.tid_cfg,
    )
    result = machine.run()
    _CACHE[cfg] = result
    return result


def run_matrix(
    schemes: Iterable[str],
    workloads: Iterable[str],
    base: Optional[RunConfig] = None,
) -> Dict[Tuple[str, str], MachineResult]:
    """Run a (scheme x workload) grid; keys are ``(scheme, workload)``."""
    if base is None:
        base = RunConfig(scheme="baseline", workload="cact")
    out: Dict[Tuple[str, str], MachineResult] = {}
    for wl in workloads:
        for scheme in schemes:
            cfg = base.with_(scheme=scheme, workload=wl)
            out[(scheme, wl)] = run_workload(cfg)
    return out
