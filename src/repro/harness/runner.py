"""Run-one / run-many drivers with caching inside a process.

Experiments share (scheme, workload) runs -- e.g., Fig. 9 and Fig. 11
both need TDC and NOMAD on every workload -- so the runner memoizes
results by their full parameter key within the process.  The memo cache
is bounded (LRU) and instrumented; campaign summaries surface its
hit/miss counters.

A persistent :class:`repro.campaign.store.ResultStore` can additionally
be installed with :func:`set_result_store`; ``run_workload`` then falls
back to the disk store on a memo miss and writes every fresh simulation
through to it, so repeated benchmark/figure runs become cache hits
across processes and sessions.

Below the result caches sits the **snapshot cache**: configs that
differ only in ROI-side knobs (seed, trace length) share one
built+prewarmed machine image, and ``_build`` forks it instead of
rebuilding (see :mod:`repro.snapshot`).  Forks are bit-identical to
fresh builds -- pinned by the golden fork test -- so the cache is
transparent to every result.  Policy mirrors the result caches: guarded
or telemetry-observed runs may *consume* a snapshot (a fork proves as
much as a build) but never *prime* one.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, fields, replace
from typing import Dict, Iterable, Optional, Tuple

from repro.config.schemes import NomadConfig, TDCConfig, TiDConfig
from repro.config.system import scaled_system
from repro.snapshot import (
    SnapshotCache,
    SnapshotError,
    snapshot_eligible,
    snapshot_key,
)
from repro.system.builder import build_machine
from repro.system.machine import Machine, MachineResult
from repro.workloads.synthetic import trace_cache_stats


@dataclass(frozen=True)
class RunConfig:
    """Everything identifying one simulation run."""

    scheme: str
    workload: str
    num_mem_ops: int = 10_000
    num_cores: int = 4
    dc_megabytes: int = 64
    seed: int = 1
    prewarm: bool = True
    nomad_cfg: Optional[NomadConfig] = None
    tdc_cfg: Optional[TDCConfig] = None
    tid_cfg: Optional[TiDConfig] = None

    def with_(self, **overrides) -> "RunConfig":
        return replace(self, **overrides)

    def to_dict(self) -> dict:
        """JSON-compatible view; stable input for cache keys + workers."""
        return {
            "scheme": self.scheme,
            "workload": self.workload,
            "num_mem_ops": self.num_mem_ops,
            "num_cores": self.num_cores,
            "dc_megabytes": self.dc_megabytes,
            "seed": self.seed,
            "prewarm": self.prewarm,
            "nomad_cfg": self.nomad_cfg.to_dict() if self.nomad_cfg else None,
            "tdc_cfg": self.tdc_cfg.to_dict() if self.tdc_cfg else None,
            "tid_cfg": self.tid_cfg.to_dict() if self.tid_cfg else None,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "RunConfig":
        known = {f.name for f in fields(cls)}
        unknown = set(d) - known
        if unknown:
            raise ValueError(f"RunConfig.from_dict: unknown keys {sorted(unknown)}")
        kwargs = dict(d)
        for key, sub_cls in (
            ("nomad_cfg", NomadConfig),
            ("tdc_cfg", TDCConfig),
            ("tid_cfg", TiDConfig),
        ):
            sub = kwargs.get(key)
            if sub is not None and not isinstance(sub, sub_cls):
                kwargs[key] = sub_cls.from_dict(sub)
        return cls(**kwargs)


class MemoCache:
    """Bounded LRU memo of ``RunConfig -> MachineResult`` with counters."""

    def __init__(self, maxsize: int = 4096):
        self.maxsize = maxsize
        self._data: "OrderedDict[RunConfig, MachineResult]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key: RunConfig) -> Optional[MachineResult]:
        try:
            value = self._data[key]
        except KeyError:
            self.misses += 1
            return None
        self._data.move_to_end(key)
        self.hits += 1
        return value

    def put(self, key: RunConfig, value: MachineResult) -> None:
        self._data[key] = value
        self._data.move_to_end(key)
        while len(self._data) > self.maxsize:
            self._data.popitem(last=False)
            self.evictions += 1

    def clear(self) -> None:
        self._data.clear()
        self.hits = self.misses = self.evictions = 0

    def __len__(self) -> int:
        return len(self._data)

    def stats(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "size": len(self._data),
            "maxsize": self.maxsize,
        }


_CACHE = MemoCache()
# Optional cross-process store (duck-typed: get/put/stats), see
# repro.campaign.store.ResultStore.
_STORE = None
# Built+prewarmed machine images keyed by the build-affecting config
# prefix; worker processes each hold their own (campaign batching
# routes same-key runs to the same worker to exploit that).
_SNAPSHOTS = SnapshotCache()


def clear_cache() -> None:
    _CACHE.clear()


def cache_stats() -> Dict[str, Dict]:
    """All in-process cache counters, one section per layer:
    ``memo`` (results), ``snapshot`` (machine images), ``trace``
    (materialized workload traces)."""
    return {
        "memo": _CACHE.stats(),
        "snapshot": _SNAPSHOTS.stats(),
        "trace": trace_cache_stats(),
    }


# The amortization-cache counters that travel between processes: pool
# workers and service runners report *deltas* of these so a campaign
# summary (or a broker dashboard) can aggregate hit rates fleet-wide.
CACHE_COUNT_KEYS = {
    "snapshot": ("hits", "misses", "stores", "evictions"),
    "trace": ("hits", "misses", "disk_hits", "disk_writes", "evictions"),
}


def cache_counts() -> Dict[str, Dict[str, int]]:
    """The transportable subset of :func:`cache_stats` (ints only)."""
    caches = cache_stats()
    return {
        section: {k: int(caches[section].get(k, 0)) for k in keys}
        for section, keys in CACHE_COUNT_KEYS.items()
    }


def cache_delta(before: Dict[str, Dict[str, int]],
                after: Dict[str, Dict[str, int]]) -> Dict[str, Dict[str, int]]:
    """Per-counter ``after - before`` over :data:`CACHE_COUNT_KEYS`."""
    return {
        section: {k: after[section][k] - before[section][k] for k in counts}
        for section, counts in before.items()
    }


def merge_cache_counts(dst: Dict[str, Dict[str, int]], src) -> None:
    """Accumulate a (possibly partial) counts mapping into *dst*."""
    for section, counts in (src or {}).items():
        bucket = dst.setdefault(section, {})
        for k, v in counts.items():
            bucket[k] = bucket.get(k, 0) + v


def configure_cache(maxsize: int) -> None:
    """Re-bound the memo cache (clears it)."""
    global _CACHE
    _CACHE = MemoCache(maxsize=maxsize)


def clear_snapshot_cache() -> None:
    _SNAPSHOTS.clear()


def configure_snapshots(maxsize: int) -> int:
    """Re-bound the snapshot cache (clears it); returns the previous
    bound.  ``maxsize=0`` disables forking entirely -- the bench
    harness uses that to measure the rebuild-every-run baseline."""
    global _SNAPSHOTS
    prev = _SNAPSHOTS.maxsize
    _SNAPSHOTS = SnapshotCache(maxsize=maxsize)
    return prev


def set_result_store(store) -> object:
    """Install a persistent result store; returns the previous one."""
    global _STORE
    prev = _STORE
    _STORE = store
    return prev


def get_result_store():
    return _STORE


def cached_result(cfg: RunConfig) -> Tuple[Optional[MachineResult], str]:
    """Look up *cfg* without simulating.

    Returns ``(result, source)`` where source is ``"memo"`` or
    ``"store"``; a store hit is promoted into the memo cache.
    """
    result = _CACHE.get(cfg)
    if result is not None:
        return result, "memo"
    if _STORE is not None:
        result = _STORE.get(cfg)
        if result is not None:
            _CACHE.put(cfg, result)
            return result, "store"
    return None, ""


def prime(cfg: RunConfig, result: MachineResult) -> None:
    """Insert an externally computed result (e.g. from a pool worker)."""
    _CACHE.put(cfg, result)
    if _STORE is not None:
        _STORE.put(cfg, result)


def run_workload(cfg: RunConfig, guard=None, telemetry=None) -> MachineResult:
    """Run (or fetch the cached result of) one configuration.

    ``guard`` (``True`` / ``GuardConfig`` / ``Guard``) opts into
    paranoid mode.  Guarded runs always simulate: they bypass both the
    memo cache and the result store on lookup *and* on write-through --
    a cached result proves nothing about invariants, and a chaos run's
    result must never poison the caches.

    ``telemetry`` (``True`` / ``TelemetryConfig`` / ``Telemetry``) opts
    into observability.  Telemetry runs always simulate (a cached result
    has no trace), but -- being bit-identical by construction -- their
    results are safe to prime into the caches when unguarded.
    """
    if guard is not None and guard is not False:
        result, _machine = simulate(cfg, guard=guard, telemetry=telemetry)
        return result
    if telemetry is not None and telemetry is not False:
        result, _machine = simulate(cfg, telemetry=telemetry)
        prime(cfg, result)
        return result
    cached, _source = cached_result(cfg)
    if cached is not None:
        return cached
    result = _build(cfg).run()
    prime(cfg, result)
    return result


def simulate(cfg: RunConfig, guard=None, telemetry=None):
    """Always-fresh simulation; returns ``(result, machine)``.

    The machine comes back for callers that need post-run state the
    result does not carry (full ``Machine.metrics()``, the telemetry
    document).  Never consults or fills the *result* caches --
    ``run_workload`` layers that policy on top.  The build may still be
    served by forking a cached machine snapshot (bit-identical to a
    fresh build); guarded/observed runs never prime that cache.
    """
    guard_obj = None
    if guard is not None and guard is not False:
        from repro.guard import as_guard

        guard_obj = as_guard(guard, run_config=cfg.to_dict())
    observed = guard_obj is not None or (
        telemetry is not None and telemetry is not False
    )
    machine = _build(cfg, prime_snapshots=not observed)
    result = machine.run(guard=guard_obj, telemetry=telemetry)
    return result, machine


def _build(cfg: RunConfig, prime_snapshots: bool = True):
    """A ready-to-run machine for *cfg*: forked from the snapshot cache
    when a build-compatible image exists, freshly built otherwise.

    A fresh eligible build is snapshotted into the cache unless
    ``prime_snapshots`` is False (guarded/observed callers).
    """
    if snapshot_eligible(cfg) and _SNAPSHOTS.maxsize > 0:
        key = snapshot_key(cfg)
        blob = _SNAPSHOTS.get(key)
        if blob is not None:
            return Machine.restore(
                blob, seed=cfg.seed, num_mem_ops=cfg.num_mem_ops
            )
        machine = _fresh_build(cfg)
        if prime_snapshots:
            try:
                _SNAPSHOTS.put(key, machine.snapshot())
            except SnapshotError:
                pass  # e.g. spec-less machines; just skip amortization
        return machine
    return _fresh_build(cfg)


def _fresh_build(cfg: RunConfig):
    system = scaled_system(num_cores=cfg.num_cores, dc_megabytes=cfg.dc_megabytes)
    return build_machine(
        cfg.scheme,
        workload_name=cfg.workload,
        cfg=system,
        num_mem_ops=cfg.num_mem_ops,
        seed=cfg.seed,
        prewarm=cfg.prewarm,
        nomad_cfg=cfg.nomad_cfg,
        tdc_cfg=cfg.tdc_cfg,
        tid_cfg=cfg.tid_cfg,
    )


def run_matrix(
    schemes: Iterable[str],
    workloads: Iterable[str],
    base: Optional[RunConfig] = None,
    jobs: int = 1,
    store=None,
) -> Dict[Tuple[str, str], MachineResult]:
    """Run a (scheme x workload) grid; keys are ``(scheme, workload)``.

    Routed through the campaign layer: ``jobs > 1`` fans the grid out
    over worker processes, and ``store`` (or the installed global store)
    serves repeats from disk.  Raises ``CampaignError`` if any run fails.
    """
    from repro.campaign import GridSpec, run_campaign

    if base is None:
        base = RunConfig(scheme="baseline", workload="cact")
    grid = GridSpec(schemes=tuple(schemes), workloads=tuple(workloads), base=base)
    return run_campaign(grid, jobs=jobs, store=store).as_matrix()
