"""RMHB-based workload classification (Table I, Section II-C).

The paper buckets workloads by how their required miss-handling
bandwidth (measured under the ideal OS-managed configuration) compares
with the available off-package memory bandwidth:

* **excess** -- RMHB above the available bandwidth,
* **tight**  -- consumes nearly all of it,
* **loose**  -- needs about half,
* **few**    -- negligible.
"""

from __future__ import annotations

from typing import Dict

from repro.system.machine import MachineResult

# Fractions of the off-package *peak* bandwidth separating the classes.
# The paper's boundaries are against *attainable* bandwidth (~80% of
# peak under mixed read/write traffic), which is why "tight" extends
# slightly past 1.0x peak: its tight workloads (les at 26.5 GB/s) sit at
# or just above the 25.6 GB/s theoretical peak.
EXCESS_FRACTION = 1.25
TIGHT_FRACTION = 0.80
LOOSE_FRACTION = 0.25


def classify_rmhb(rmhb_gbps: float, offpackage_peak_gbps: float) -> str:
    """Class name for one workload's measured RMHB."""
    if offpackage_peak_gbps <= 0:
        raise ValueError("off-package peak bandwidth must be positive")
    ratio = rmhb_gbps / offpackage_peak_gbps
    if ratio > EXCESS_FRACTION:
        return "excess"
    if ratio > TIGHT_FRACTION:
        return "tight"
    if ratio > LOOSE_FRACTION:
        return "loose"
    return "few"


def classify_results(
    ideal_results: Dict[str, MachineResult], offpackage_peak_gbps: float
) -> Dict[str, str]:
    """Classify every workload from its ideal-configuration run."""
    return {
        name: classify_rmhb(res.rmhb_gbps, offpackage_peak_gbps)
        for name, res in ideal_results.items()
    }
