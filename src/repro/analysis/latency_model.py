"""The effective DC access latency model of Fig. 7.

Composes unloaded (queueing-free) latencies per scheme for the four
(TLB, DC-tag) hit/miss combinations the paper analyzes:

* HW-based (TiD): pays an on-package tag read on every access; hides
  miss latency with MSHRs + critical-word-first.
* Blocking OS-managed (TDC): ideal on hits; on misses the thread eats
  tag management plus the *entire* page copy.
* NOMAD: ideal on hits (plus a ~1-cycle PCSHR compare); on misses the
  thread eats tag management only, and the demanded sub-block arrives
  via critical-data-first into the page copy buffer.

These are the bars of Fig. 7 (and the sanity anchor for the measured
Fig. 9 DC access times, which add queueing).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict

from repro.config.schemes import NomadConfig, TiDConfig
from repro.config.system import SystemConfig
from repro.dram.timing import ResolvedTiming


class LatencyCase(enum.Enum):
    """(TLB, DC tag) outcome pairs."""

    HIT_HIT = "hit_hit"
    MISS_MISS = "miss_miss"
    MISS_HIT = "miss_hit"
    HIT_MISS = "hit_miss"


@dataclass(frozen=True)
class LatencyModel:
    """Unloaded latency components, all in CPU cycles."""

    sram_path: int  # L1+L2+L3 lookup on the way to the DC
    hbm_access: int  # one on-package burst, row closed
    ddr_access: int  # one off-package burst, row closed
    walk: int  # page-table walk (TLB miss penalty)
    tag_mgmt: int  # OS tag-miss handler critical path
    page_copy: int  # full 4 KB page copy through one DDR channel
    pcshr_lookup: int
    copy_buffer: int

    @classmethod
    def from_config(
        cls,
        cfg: SystemConfig,
        nomad_cfg: NomadConfig = NomadConfig(),
    ) -> "LatencyModel":
        hbm_t = ResolvedTiming.from_config(cfg.hbm, cfg.core.freq_ghz)
        ddr_t = ResolvedTiming.from_config(cfg.ddr, cfg.core.freq_ghz)
        sram = cfg.l1.latency + cfg.l2.latency + cfg.l3.latency
        bursts = 4096 // 64
        copy = (
            ddr_t.row_closed_latency
            + (bursts // cfg.ddr.num_channels - 1) * ddr_t.tburst
            + hbm_t.row_closed_latency
        )
        return cls(
            sram_path=sram,
            hbm_access=hbm_t.row_closed_latency,
            ddr_access=ddr_t.row_closed_latency,
            walk=cfg.tlb.walk_latency,
            tag_mgmt=nomad_cfg.tag_mgmt_latency,
            page_copy=copy,
            pcshr_lookup=nomad_cfg.pcshr_lookup_latency,
            copy_buffer=nomad_cfg.copy_buffer_latency,
        )

    # -- per-scheme composition -------------------------------------------

    def tid(self, case: LatencyCase) -> int:
        tag_read = self.hbm_access
        hit = self.sram_path + tag_read + self.hbm_access
        # Non-blocking miss: critical 64 B block straight from DDR.
        miss = self.sram_path + tag_read + self.ddr_access
        return {
            LatencyCase.HIT_HIT: hit,
            LatencyCase.HIT_MISS: miss,
            LatencyCase.MISS_HIT: self.walk + hit,
            LatencyCase.MISS_MISS: self.walk + miss,
        }[case]

    def tdc(self, case: LatencyCase) -> int:
        hit = self.sram_path + self.hbm_access
        # Blocking miss: the thread waits for tag mgmt + the whole copy.
        miss = self.walk + self.tag_mgmt + self.page_copy + self.sram_path + self.hbm_access
        uncacheable = self.sram_path + self.ddr_access
        return {
            LatencyCase.HIT_HIT: hit,
            LatencyCase.MISS_HIT: self.walk + hit,
            LatencyCase.MISS_MISS: miss,
            LatencyCase.HIT_MISS: uncacheable,
        }[case]

    def nomad(self, case: LatencyCase) -> int:
        hit = self.sram_path + self.pcshr_lookup + self.hbm_access
        # Non-blocking miss: tag mgmt, then the prioritized sub-block
        # arrives in the page copy buffer (critical-data-first).
        miss = (
            self.walk
            + self.tag_mgmt
            + self.ddr_access
            + self.pcshr_lookup
            + self.copy_buffer
            + self.sram_path
        )
        uncacheable = self.sram_path + self.ddr_access
        return {
            LatencyCase.HIT_HIT: hit,
            LatencyCase.MISS_HIT: self.walk + hit,
            LatencyCase.MISS_MISS: miss,
            LatencyCase.HIT_MISS: uncacheable,
        }[case]

    def ideal(self, case: LatencyCase) -> int:
        hit = self.sram_path + self.hbm_access
        return {
            LatencyCase.HIT_HIT: hit,
            LatencyCase.MISS_HIT: self.walk + hit,
            LatencyCase.MISS_MISS: self.walk + hit,
            LatencyCase.HIT_MISS: self.sram_path + self.ddr_access,
        }[case]

    def table(self) -> Dict[str, Dict[str, int]]:
        """All schemes x all cases, for the Fig. 7 bench."""
        out: Dict[str, Dict[str, int]] = {}
        for name, fn in (
            ("tid", self.tid),
            ("tdc", self.tdc),
            ("nomad", self.nomad),
            ("ideal", self.ideal),
        ):
            out[name] = {case.value: fn(case) for case in LatencyCase}
        return out
