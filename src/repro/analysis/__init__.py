"""Analytic models and derived-metric helpers."""

from repro.analysis.classification import classify_rmhb, classify_results
from repro.analysis.latency_model import LatencyCase, LatencyModel

__all__ = ["LatencyCase", "LatencyModel", "classify_rmhb", "classify_results"]
