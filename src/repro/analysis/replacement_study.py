"""FIFO fully-associative vs set-associative LRU DRAM caches.

Section III-C2 justifies NOMAD's FIFO policy: "the fully-associative
nature of the OS-managed design combined with the FIFO replacement
policy exhibits about 23% less DC misses on average than a 16-way
set-associative HW-based DRAM cache using an LRU policy."

This module replays a page-reference stream against both organizations
(pure cache models, no timing) so the claim can be checked per workload.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Iterable, List

from repro.workloads.synthetic import SyntheticWorkload, WorkloadSpec


class FullyAssociativeFIFO:
    """The OS-managed organization: one FIFO over all frames."""

    def __init__(self, capacity_pages: int):
        if capacity_pages <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity_pages
        self._resident: "OrderedDict[int, None]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def access(self, page: int) -> bool:
        if page in self._resident:
            self.hits += 1
            return True
        self.misses += 1
        if len(self._resident) >= self.capacity:
            self._resident.popitem(last=False)
        self._resident[page] = None
        return False

    @property
    def miss_rate(self) -> float:
        total = self.hits + self.misses
        return self.misses / total if total else 0.0


class SetAssociativeLRU:
    """The HW-based organization: N-way sets, LRU within each set."""

    def __init__(self, capacity_pages: int, ways: int):
        if capacity_pages <= 0 or ways <= 0:
            raise ValueError("capacity and ways must be positive")
        self.num_sets = max(1, capacity_pages // ways)
        self.ways = ways
        self._sets: List["OrderedDict[int, None]"] = [
            OrderedDict() for _ in range(self.num_sets)
        ]
        self.hits = 0
        self.misses = 0

    def access(self, page: int) -> bool:
        s = self._sets[page % self.num_sets]
        if page in s:
            s.move_to_end(page)
            self.hits += 1
            return True
        self.misses += 1
        if len(s) >= self.ways:
            s.popitem(last=False)
        s[page] = None
        return False

    @property
    def miss_rate(self) -> float:
        total = self.hits + self.misses
        return self.misses / total if total else 0.0


@dataclass
class ReplacementComparison:
    workload: str
    fifo_miss_rate: float
    lru_miss_rate: float

    @property
    def miss_reduction(self) -> float:
        """Fraction of set-assoc-LRU misses that FIFO-full-assoc avoids."""
        if self.lru_miss_rate == 0:
            return 0.0
        return 1.0 - self.fifo_miss_rate / self.lru_miss_rate


def page_stream(spec: WorkloadSpec, seed: int = 1, core_id: int = 0) -> Iterable[int]:
    """Distinct-page reference stream of one trace (dedup within runs)."""
    last = None
    for _, addr, _, _ in SyntheticWorkload(spec, seed=seed, core_id=core_id):
        page = addr >> 12
        if page != last:
            yield page
            last = page


def compare_replacement(
    spec: WorkloadSpec, capacity_pages: int, ways: int = 16, seed: int = 1
) -> ReplacementComparison:
    """Replay one workload against both cache organizations."""
    fifo = FullyAssociativeFIFO(capacity_pages)
    lru = SetAssociativeLRU(capacity_pages, ways)
    for page in page_stream(spec, seed=seed):
        fifo.access(page)
        lru.access(page)
    return ReplacementComparison(spec.name, fifo.miss_rate, lru.miss_rate)


def replacement_study(
    specs: Iterable[WorkloadSpec], capacity_pages: int, ways: int = 16
) -> List[ReplacementComparison]:
    return [compare_replacement(s, capacity_pages, ways) for s in specs]
