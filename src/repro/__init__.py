"""repro -- a full-system reproduction of NOMAD (HPCA 2023).

NOMAD is a non-blocking OS-managed DRAM cache enabled by tag-data
decoupling: the OS front-end keeps DC tags in PTEs/TLBs (near-ideal
access time) while back-end hardware (PCSHRs + page copy buffers)
executes page copies without suspending application threads.

Public API highlights
---------------------
* :func:`build_machine` -- assemble a machine for one (scheme, workload)
* :class:`NomadScheme` and the baselines (``baseline``/``tid``/``tdc``/
  ``ideal``)
* :mod:`repro.workloads` -- the Table I synthetic workload presets
* :mod:`repro.harness` -- experiment definitions for every paper figure

Quickstart
----------
    from repro import build_machine
    result = build_machine("nomad", workload_name="cact").run()
    print(result.ipc, result.os_stall_ratio)
"""

from repro.campaign import GridSpec, ResultStore, run_campaign
from repro.config.schemes import BackendTopology, NomadConfig, TDCConfig, TiDConfig
from repro.config.system import SystemConfig, paper_system, scaled_system
from repro.core.nomad import IdealScheme, NomadScheme
from repro.schemes.base import SchemeBase
from repro.schemes.baseline import BaselineScheme
from repro.schemes.ideal import UnthrottledScheme
from repro.schemes.tdc import TDCScheme
from repro.schemes.tid import TiDScheme
from repro.system.builder import SCHEME_REGISTRY, build_machine, make_scheme
from repro.system.machine import Machine, MachineResult
from repro.workloads.presets import PRESETS, WORKLOAD_CLASSES, workload
from repro.workloads.synthetic import SyntheticWorkload, WorkloadSpec

__version__ = "1.0.0"

__all__ = [
    "BackendTopology",
    "BaselineScheme",
    "GridSpec",
    "IdealScheme",
    "ResultStore",
    "run_campaign",
    "Machine",
    "MachineResult",
    "NomadConfig",
    "NomadScheme",
    "PRESETS",
    "SCHEME_REGISTRY",
    "SchemeBase",
    "SyntheticWorkload",
    "SystemConfig",
    "TDCConfig",
    "TDCScheme",
    "TiDConfig",
    "TiDScheme",
    "UnthrottledScheme",
    "WORKLOAD_CLASSES",
    "WorkloadSpec",
    "build_machine",
    "make_scheme",
    "paper_system",
    "scaled_system",
    "workload",
]
