"""Crash diagnostic bundles + deterministic replay.

When a guarded run dies, ``Machine.run`` asks the guard to write a
bundle: one directory holding ``bundle.json`` with everything needed to
(a) post-mortem the failure without rerunning, and (b) rerun it
deterministically -- the serialized ``RunConfig`` (seed included), the
:class:`GuardConfig` (chaos injection included), a version stamp, the
events-processed count, the ring buffer of the last K dispatched events,
and per-component state dumps.

``replay_bundle`` (exposed as ``python -m repro replay BUNDLE``) rebuilds
the run from the bundle's config with guards forced on, bypassing every
cache, and reports whether the same failure recurred at the same event
count.
"""

from __future__ import annotations

import json
import os
import time
import traceback
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Union

from repro.guard.core import Guard, GuardConfig, callback_name, queue_head
from repro.guard.errors import GuardError

BUNDLE_VERSION = 1
_counter = 0  # disambiguates bundles within one process


def default_bundle_dir() -> Path:
    """``$REPRO_GUARD_BUNDLES`` if set, else ``~/.cache/repro-nomad/bundles``."""
    env = os.environ.get("REPRO_GUARD_BUNDLES")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro-nomad" / "bundles"


def _sim_version() -> str:
    import repro

    return repro.__version__


def write_bundle(guard: Guard, exc: BaseException, machine) -> Path:
    """Serialize one failure into a fresh bundle directory."""
    global _counter
    _counter += 1
    root = Path(guard.config.bundle_dir or default_bundle_dir())
    name = f"bundle-{int(time.time())}-{os.getpid()}-{_counter}"
    path = root / name
    path.mkdir(parents=True, exist_ok=True)

    sim = machine.sim if machine is not None else None
    components = {}
    if sim is not None:
        for component in sim.components:
            state = component.guard_state()
            stats = component.stats.as_dict()
            if state or stats:
                components[component.name] = {"state": state, "stats": stats}

    error = {
        "type": type(exc).__name__,
        "message": str(exc),
        "traceback": "".join(
            traceback.format_exception(type(exc), exc, exc.__traceback__)
        ),
        "failure_kind": getattr(exc, "failure_kind", "crash"),
        "checker": getattr(exc, "checker", None),
        "component": getattr(exc, "component", None),
        "problems": getattr(exc, "problems", None),
        "snapshot": getattr(exc, "snapshot", None),
    }
    data = {
        "bundle_version": BUNDLE_VERSION,
        "sim_version": _sim_version(),
        "created_unix": time.time(),
        "run_config": guard.run_config,
        "guard_config": guard.config.to_dict(),
        "chaos_applied": guard.chaos_applied,
        "error": error,
        "events_processed": sim.events_processed if sim is not None else None,
        "now": sim.now if sim is not None else None,
        "pending_events": sim.pending_events if sim is not None else None,
        "queue_head": queue_head(sim) if sim is not None else None,
        "ring": [
            f"t={t} seq={s} {callback_name(cb)}" for t, s, cb in guard.ring
        ],
        "components": components,
        "telemetry_window": guard.telemetry_window,
    }
    (path / "bundle.json").write_text(
        json.dumps(data, indent=1, sort_keys=True, default=str)
    )
    return path


def load_bundle(path: Union[str, Path]) -> dict:
    """Read a bundle given its directory or its ``bundle.json`` path."""
    p = Path(path)
    if p.is_dir():
        p = p / "bundle.json"
    try:
        return json.loads(p.read_text())
    except OSError as exc:
        raise GuardError(f"cannot read bundle at {path}: {exc}") from exc
    except ValueError as exc:
        raise GuardError(f"corrupt bundle at {path}: {exc}") from exc


@dataclass
class ReplayReport:
    """Outcome of replaying one bundle."""

    bundle_path: str
    reproduced: bool
    expected: dict = field(default_factory=dict)
    observed: dict = field(default_factory=dict)
    detail: str = ""
    telemetry_window: Optional[dict] = None

    def to_dict(self) -> dict:
        return {
            "bundle_path": self.bundle_path,
            "reproduced": self.reproduced,
            "expected": dict(self.expected),
            "observed": dict(self.observed),
            "detail": self.detail,
            "telemetry_window": self.telemetry_window,
        }

    def describe(self) -> str:
        if self.reproduced:
            head = (
                f"reproduced: {self.expected.get('type')} "
                f"({self.expected.get('checker') or 'crash'}) at "
                f"{self.expected.get('events_processed')} events"
            )
        else:
            head = f"NOT reproduced: {self.detail}"
        window = self.telemetry_window
        if not window:
            return head
        lines = [head, "telemetry at failure:"]
        samples = window.get("samples") or []
        if samples:
            last = samples[-1]
            keys = ("t", "instructions", "ipc", "active_copies",
                    "mshr_outstanding", "free_frames", "pending_events")
            parts = ", ".join(
                f"{k}={last[k]}" for k in keys if k in last
            )
            lines.append(f"  last sample: {parts}")
            lines.append(f"  window: {len(samples)} sample(s), "
                         f"{window.get('num_samples', 0)} total")
        for label in (window.get("trace_tail") or [])[-8:]:
            lines.append(f"  {label}")
        return "\n".join(lines)


def replay_bundle(path: Union[str, Path]) -> ReplayReport:
    """Re-run a bundle's config deterministically with guards forced on.

    Clears the in-process memo and trace caches and runs without any
    result store, so the simulation genuinely re-executes.  The replay
    matches on the exception type, the failing checker, and the event
    count at failure.
    """
    data = load_bundle(path)
    run_config = data.get("run_config")
    if not run_config:
        raise GuardError(
            f"bundle at {path} carries no run_config; it cannot be replayed"
        )
    guard_cfg = GuardConfig.from_dict(data.get("guard_config") or {})
    # Never write a nested bundle from the replay itself.
    guard_cfg = GuardConfig.from_dict(
        {**guard_cfg.to_dict(), "write_bundle": False}
    )
    expected = {
        "type": (data.get("error") or {}).get("type"),
        "checker": (data.get("error") or {}).get("checker"),
        "events_processed": data.get("events_processed"),
    }

    from repro.harness import runner
    from repro.harness.runner import RunConfig
    from repro.workloads.synthetic import clear_trace_cache

    cfg = RunConfig.from_dict(run_config)
    runner.clear_cache()
    clear_trace_cache()
    prev_store = runner.set_result_store(None)
    guard = Guard(guard_cfg, run_config=dict(run_config))
    try:
        runner.run_workload(cfg, guard=guard)
        observed = {"type": None, "checker": None, "events_processed": None}
        detail = "replay completed without failing"
    except Exception as exc:  # deterministic failures compare below
        observed = {
            "type": type(exc).__name__,
            "checker": getattr(exc, "checker", None),
            "events_processed": guard.events_at_failure,
        }
        detail = f"replay failed with {type(exc).__name__}: {exc}"
    finally:
        runner.set_result_store(prev_store)

    reproduced = (
        observed["type"] == expected["type"]
        and observed["checker"] == expected["checker"]
        and observed["events_processed"] == expected["events_processed"]
    )
    if reproduced:
        detail = "same failure at the same event count"
    else:
        detail = (
            f"expected {expected['type']}/{expected['checker']} at "
            f"{expected['events_processed']} events, got "
            f"{observed['type']}/{observed['checker']} at "
            f"{observed['events_processed']} ({detail})"
        )
    return ReplayReport(
        bundle_path=str(path),
        reproduced=reproduced,
        expected=expected,
        observed=observed,
        detail=detail,
        telemetry_window=data.get("telemetry_window"),
    )
