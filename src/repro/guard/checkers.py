"""Per-component invariant checkers (the "paranoid mode" validators).

Each checker is a pure read of one component's state that returns a list
of human-readable problem strings (empty = healthy).  They are built
once per guarded run by :func:`build_checkers`, which walks the machine
with ``getattr`` discovery so the same code covers every scheme: the
PCSHR/frame/TLB checkers attach only where a back-end or front-end
exists (nomad, ideal, tdc), the MSHR/DRAM/ROB checkers attach
everywhere.

The checkers deliberately read the same private fields the engine's
fast paths read (``EventQueue._heap``/``_live``, ``MSHRFile._entries``,
``Backend._by_cfn``): the layout contracts those fast paths pin are
exactly what the guard verifies.

The only state a checker mutates is ``PCSHR.sync(now)``, which brings
the *derived* B/W vectors up to date before validating their ordering;
``sync`` is idempotent at a fixed ``now`` and the simulation itself
calls it at every observation point, so a guarded run stays
bit-identical to an unguarded one.
"""

from __future__ import annotations

from typing import Callable, List, Tuple

from repro.common.types import SUB_BLOCKS_PER_PAGE

# A checker registration: (checker_name, component_name, thunk).
CheckerEntry = Tuple[str, str, Callable[[], List[str]]]


# ---------------------------------------------------------------------------
# Engine
# ---------------------------------------------------------------------------

def check_event_queue(sim) -> List[str]:
    """Live-counter agreement + heap head not in the past."""
    problems: List[str] = []
    queue = sim._queue
    heap = queue._heap
    actual_live = sum(1 for entry in heap if not entry[2].cancelled)
    if actual_live != queue._live:
        problems.append(
            f"live counter says {queue._live} events but the heap holds "
            f"{actual_live} non-cancelled entries"
        )
    if heap and heap[0][0] < sim.now:
        problems.append(
            f"queue head is scheduled at t={heap[0][0]}, in the past "
            f"(now={sim.now})"
        )
    return problems


# ---------------------------------------------------------------------------
# Cores (ROB occupancy bounds)
# ---------------------------------------------------------------------------

def check_rob(core) -> List[str]:
    problems: List[str] = []
    outstanding = core.outstanding
    limit = core.rob_size + core.width
    if len(outstanding) > limit:
        problems.append(
            f"{len(outstanding)} loads in flight exceeds the ROB window "
            f"({core.rob_size} + width {core.width})"
        )
    if not 0 <= core.outstanding_stores <= core.store_buffer:
        problems.append(
            f"outstanding_stores={core.outstanding_stores} outside "
            f"[0, {core.store_buffer}]"
        )
    prev = None
    for entry in outstanding:
        idx = entry[0]
        if prev is not None and idx <= prev:
            problems.append(
                f"in-flight load indices not strictly increasing "
                f"({prev} then {idx}): ROB order corrupted"
            )
            break
        prev = idx
    if core.done and outstanding:
        problems.append(
            f"core finished with {len(outstanding)} loads still in flight"
        )
    return problems


# ---------------------------------------------------------------------------
# Cache hierarchy (MSHR leak / double-free)
# ---------------------------------------------------------------------------

def check_mshrs(hierarchy, sim, age_limit: int) -> List[str]:
    problems: List[str] = []
    mshrs = hierarchy.mshrs
    entries = mshrs._entries
    if len(entries) > mshrs.capacity:
        problems.append(
            f"{len(entries)} MSHRs allocated, capacity {mshrs.capacity}"
        )
    now = sim.now
    pending = hierarchy._pending_issue
    for key, entry in entries.items():
        if entry.key != key:
            problems.append(
                f"MSHR keyed {key} tagged {entry.key}: tag corrupted"
            )
        if now - entry.issue_time > age_limit:
            problems.append(
                f"MSHR {key} outstanding {now - entry.issue_time} cycles "
                f"(> {age_limit}): leaked entry"
            )
        if not entry.waiters and key not in pending:
            problems.append(
                f"MSHR {key} has no waiters and no pending issue: "
                f"leaked or double-retired"
            )
    if mshrs._overflow and len(entries) < mshrs.capacity:
        problems.append(
            f"{len(mshrs._overflow)} misses parked in overflow while "
            f"{mshrs.capacity - len(entries)} MSHRs are free"
        )
    overflow_keys = {key for key, _t, _cb in mshrs._overflow}
    for key in pending:
        if key not in entries and key not in overflow_keys:
            problems.append(
                f"pending issue for line {key} has no MSHR and no overflow "
                f"slot: the fill would double-free"
            )
    return problems


# ---------------------------------------------------------------------------
# Back-end (PCSHR consistency)
# ---------------------------------------------------------------------------

def check_pcshrs(backend, sim) -> List[str]:
    problems: List[str] = []
    free = list(backend._free)
    active = backend._by_cfn
    if len(free) + len(active) != len(backend.pcshrs):
        problems.append(
            f"{len(free)} free + {len(active)} active != "
            f"{len(backend.pcshrs)} PCSHRs: leaked or double-freed register"
        )
    free_ids = {id(p) for p in free}
    for p in active.values():
        if id(p) in free_ids:
            problems.append(
                f"PCSHR {p.index} is both free and active (cfn={p.cfn})"
            )
    for p in free:
        if p.valid:
            problems.append(f"free PCSHR {p.index} still marked valid")
    now = sim.now
    full = (1 << SUB_BLOCKS_PER_PAGE) - 1
    for cfn, p in active.items():
        if not p.valid:
            problems.append(f"active PCSHR {p.index} (cfn={cfn}) not valid")
            continue
        if p.cfn != cfn:
            problems.append(
                f"PCSHR {p.index} filed under cfn={cfn} but tagged "
                f"cfn={p.cfn}: CFN tag mismatch"
            )
        p.sync(now)
        r = p.r_vector._bits
        b = p.b_vector._bits
        w = p.w_vector._bits
        if w & ~b:
            problems.append(
                f"PCSHR {p.index} (cfn={cfn}): W bits "
                f"{w & ~b:#x} set without B (written before buffered)"
            )
        if p.launched:
            if r != full:
                problems.append(
                    f"PCSHR {p.index} (cfn={cfn}): launched but R vector "
                    f"is {r:#x}, not all-ones"
                )
            if (b | w) & ~r:
                problems.append(
                    f"PCSHR {p.index} (cfn={cfn}): B/W bits "
                    f"{(b | w) & ~r:#x} outside R (data moved before issue)"
                )
        else:
            if r or w:
                problems.append(
                    f"PCSHR {p.index} (cfn={cfn}): not launched but "
                    f"R={r:#x} W={w:#x}"
                )
        live = [e for e in p.sub_entries if e.valid]
        for e in live:
            if not 0 <= e.sub_index < SUB_BLOCKS_PER_PAGE:
                problems.append(
                    f"PCSHR {p.index} sub-entry index {e.sub_index} "
                    f"out of range"
                )
            elif p.sub_block_in_buffer(e.sub_index, now):
                problems.append(
                    f"PCSHR {p.index} sub-entry for sub-block "
                    f"{e.sub_index} still parked after the data arrived"
                )
    return problems


# ---------------------------------------------------------------------------
# Front-end (free-queue / CPD frame accounting)
# ---------------------------------------------------------------------------

def check_frames(frontend) -> List[str]:
    problems: List[str] = []
    fq = frontend.free_queue
    cpds = frontend.cpds
    valid = cpds.valid_count()
    if fq.num_free != fq.num_frames - valid:
        problems.append(
            f"free queue says {fq.num_free} free of {fq.num_frames} but "
            f"{valid} CPDs are valid (expected {fq.num_frames - valid} free)"
        )
    if not 0 <= fq.num_free <= fq.num_frames:
        problems.append(
            f"num_free={fq.num_free} outside [0, {fq.num_frames}]"
        )
    seen_pfns = {}
    for cfn in range(len(cpds)):
        cpd = cpds[cfn]
        if not cpd.valid:
            continue
        if cpd.pfn in seen_pfns:
            problems.append(
                f"pfn {cpd.pfn} cached in two frames "
                f"(cfn {seen_pfns[cpd.pfn]} and {cfn})"
            )
        seen_pfns[cpd.pfn] = cfn
        try:
            ppd = frontend.tables.ppd(cpd.pfn)
        except KeyError:
            problems.append(
                f"cfn {cfn} caches unknown pfn {cpd.pfn}"
            )
            continue
        if not ppd.cached:
            problems.append(
                f"cfn {cfn} caches pfn {cpd.pfn} but its PPD C bit is clear"
            )
    return problems


# ---------------------------------------------------------------------------
# TLB / PTE DC-tag coherence
# ---------------------------------------------------------------------------

def check_tlb_coherence(scheme, frontend) -> List[str]:
    """Cached PTEs resident in a TLB must agree with the CPD directory.

    Forward: a TLB-resident PTE with the cached bit must point at a
    valid frame whose TLB-directory bit for that core is set (else the
    eviction daemon would reclaim a frame a core can still reach without
    a shootdown).  Reverse: a set directory bit must correspond to a
    translation actually resident in that core's TLB (a stale bit
    permanently pins the frame).
    """
    problems: List[str] = []
    cpds = frontend.cpds
    tlbs = getattr(scheme, "tlbs", None) or []
    per_core_cfns: List[set] = []
    for core_id, tlb in enumerate(tlbs):
        problems.extend(tlb.consistency_problems())
        cfns = set()
        for vpn, pte in tlb._l2.items():
            if not pte.cached:
                continue
            cfn = pte.page_frame_num
            if not 0 <= cfn < len(cpds):
                problems.append(
                    f"core{core_id} TLB entry vpn={vpn} cached with "
                    f"out-of-range cfn {cfn}"
                )
                continue
            cfns.add(cfn)
            cpd = cpds[cfn]
            if not cpd.valid:
                problems.append(
                    f"core{core_id} TLB entry vpn={vpn} points at "
                    f"invalid frame cfn={cfn}"
                )
            elif not (cpd.tlb_directory >> core_id) & 1:
                problems.append(
                    f"cfn {cfn} resident in core{core_id}'s TLB "
                    f"(vpn={vpn}) but its TLB-directory bit is clear: "
                    f"eviction would skip the shootdown"
                )
        per_core_cfns.append(cfns)
    for cfn in range(len(cpds)):
        cpd = cpds[cfn]
        if not cpd.valid or not cpd.tlb_directory:
            continue
        directory = cpd.tlb_directory
        for core_id in range(len(per_core_cfns)):
            if (directory >> core_id) & 1 and cfn not in per_core_cfns[core_id]:
                problems.append(
                    f"cfn {cfn} directory claims core{core_id}'s TLB holds "
                    f"it, but no cached translation there maps it: "
                    f"stale bit pins the frame"
                )
    return problems


# ---------------------------------------------------------------------------
# DRAM bank FSM legality
# ---------------------------------------------------------------------------

def check_banks(device) -> List[str]:
    problems: List[str] = []
    for ch in device.channels:
        if ch.bus_free_at < 0:
            problems.append(f"{ch.name}: bus_free_at={ch.bus_free_at} < 0")
        for i, bank in enumerate(ch.banks):
            if bank.open_row is None:
                if bank.ready_at or bank.activated_at:
                    problems.append(
                        f"{ch.name} bank{i}: row closed but column timing "
                        f"pending (ready_at={bank.ready_at}, "
                        f"activated_at={bank.activated_at}): column access "
                        f"on a closed row"
                    )
            elif bank.ready_at < bank.activated_at:
                problems.append(
                    f"{ch.name} bank{i}: ready_at={bank.ready_at} before "
                    f"activation at {bank.activated_at}"
                )
    return problems


# ---------------------------------------------------------------------------
# Discovery
# ---------------------------------------------------------------------------

def build_checkers(machine, config) -> List[CheckerEntry]:
    """Walk the machine and register every applicable checker."""
    sim = machine.sim
    scheme = machine.scheme
    checkers: List[CheckerEntry] = [
        ("event_queue", "simulator", lambda: check_event_queue(sim)),
    ]
    for core in machine.cores:
        checkers.append(
            ("rob", core.name, lambda c=core: check_rob(c))
        )
    hierarchy = getattr(scheme, "hierarchy", None)
    if hierarchy is not None and hasattr(hierarchy, "mshrs"):
        checkers.append((
            "mshr", hierarchy.name,
            lambda: check_mshrs(hierarchy, sim, config.mshr_age_limit),
        ))
    for attr in ("hbm", "ddr"):
        device = getattr(scheme, attr, None)
        if device is not None and hasattr(device, "channels"):
            checkers.append(
                ("dram_bank", device.name, lambda d=device: check_banks(d))
            )
    frontend = getattr(scheme, "frontend", None)
    if frontend is not None:
        checkers.append(
            ("frames", frontend.name, lambda: check_frames(frontend))
        )
        checkers.append((
            "tlb_coherence", frontend.name,
            lambda: check_tlb_coherence(scheme, frontend),
        ))
    backend = getattr(scheme, "backend", None)
    if backend is not None:
        for sub in getattr(backend, "backends", None) or [backend]:
            if hasattr(sub, "_by_cfn"):
                checkers.append(
                    ("pcshr", sub.name, lambda b=sub: check_pcshrs(b, sim))
                )
    return checkers
