"""Typed guard failures.

This module is intentionally dependency-free (pure stdlib): the engine
and the machine raise these without importing the rest of the guard
package, so there is no import cycle between ``repro.engine`` /
``repro.system`` and ``repro.guard``.

All guard failures subclass :class:`GuardError`, which itself subclasses
``RuntimeError`` so existing callers that catch broad runtime failures
(and the pre-guard ``simulation stalled`` tests) keep working.
"""

from __future__ import annotations

from typing import Dict, List, Optional


class GuardError(RuntimeError):
    """Base class for every failure the guard layer can raise.

    ``failure_kind`` feeds the campaign layer's failure taxonomy
    (``timeout`` / ``crash`` / ``invariant``); ``bundle_path`` is filled
    in by ``Machine.run`` after a diagnostic bundle has been written.
    """

    failure_kind = "invariant"

    def __init__(self, *args):
        super().__init__(*args)
        self.bundle_path: Optional[str] = None


class InvariantViolation(GuardError):
    """A component's state broke one of its declared invariants."""

    def __init__(
        self,
        checker: str,
        problems: List[str],
        component: str = "",
        snapshot: Optional[Dict] = None,
    ):
        self.checker = checker
        self.component = component
        self.problems = list(problems)
        self.snapshot = dict(snapshot or {})
        where = f" in {component}" if component else ""
        detail = "; ".join(self.problems) if self.problems else "unspecified"
        super().__init__(f"invariant {checker!r} violated{where}: {detail}")


class DeadlockError(GuardError):
    """Forward progress stopped: livelock, deadlock, or a stalled drain.

    The message always contains the word ``stalled`` plus the event-queue
    head and per-component summaries so a hang is diagnosable from the
    exception alone.
    """

    def __init__(self, message: str, snapshot: Optional[Dict] = None):
        self.checker = "forward_progress"
        self.snapshot = dict(snapshot or {})
        super().__init__(message)
