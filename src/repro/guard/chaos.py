"""Fault injection: deliberately corrupt state to prove the guard fires.

Each injection takes a live :class:`~repro.system.machine.Machine`,
corrupts one component the way a real bookkeeping bug would, and returns
the name of the checker expected to catch it -- or ``None`` when the
machine is not currently in an injectable state (e.g. no page copy in
flight), in which case the guard retries at the next event.

This module is the guard layer's own self-test harness (test-only: it is
imported lazily, never on the simulation path).  Injections are wired
into a run through ``GuardConfig(chaos=..., chaos_at_event=...)``, which
makes the corruption part of the run's configuration -- a chaos crash
bundle therefore replays deterministically like any other.
"""

from __future__ import annotations

import heapq
from typing import Callable, Dict, Optional

from repro.common.types import SUB_BLOCKS_PER_PAGE

INJECTIONS: Dict[str, Callable] = {}


def register(name: str):
    def _wrap(fn):
        INJECTIONS[name] = fn
        return fn

    return _wrap


def apply_injection(name: str, machine) -> Optional[str]:
    """Run one injection; returns the expected checker name or None."""
    try:
        fn = INJECTIONS[name]
    except KeyError:
        raise ValueError(
            f"unknown chaos injection {name!r}; "
            f"known: {', '.join(sorted(INJECTIONS))}"
        ) from None
    return fn(machine)


def _active_backends(machine):
    backend = getattr(machine.scheme, "backend", None)
    if backend is None:
        return []
    return list(getattr(backend, "backends", None) or [backend])


# ---------------------------------------------------------------------------
# Injections
# ---------------------------------------------------------------------------

@register("flip_pcshr_ready_bit")
def flip_pcshr_ready_bit(machine) -> Optional[str]:
    """Set a W (written) bit for a sub-block that never reached the
    buffer: breaks the W⊆B ordering the data-hit path relies on."""
    for backend in _active_backends(machine):
        for pcshr in backend._by_cfn.values():
            pcshr.sync(machine.sim.now)
            missing = ~pcshr.b_vector._bits & ((1 << SUB_BLOCKS_PER_PAGE) - 1)
            if missing:
                sub = (missing & -missing).bit_length() - 1
                pcshr.w_vector.set(sub)
                return "pcshr"
    return None


@register("leak_mshr")
def leak_mshr(machine) -> Optional[str]:
    """Plant an ancient waiter-less MSHR entry that nothing will retire."""
    hierarchy = getattr(machine.scheme, "hierarchy", None)
    if hierarchy is None or not hasattr(hierarchy, "mshrs"):
        return None
    from repro.cache.mshr import MSHREntry

    key = (1 << 62) + 17  # outside any real line-key range
    hierarchy.mshrs._entries[key] = MSHREntry(key, -(10 ** 9), [])
    return "mshr"


@register("double_free_mshr")
def double_free_mshr(machine) -> Optional[str]:
    """Retire an MSHR out from under its pending issue (double free)."""
    hierarchy = getattr(machine.scheme, "hierarchy", None)
    if hierarchy is None or not hasattr(hierarchy, "mshrs"):
        return None
    entries = hierarchy.mshrs._entries
    for key in hierarchy._pending_issue:
        if key in entries:
            del entries[key]
            return "mshr"
    return None


@register("drop_event")
def drop_event(machine) -> Optional[str]:
    """Remove a scheduled event without cancelling it: the live counter
    and the heap disagree, and whoever scheduled it waits forever."""
    queue = machine.sim._queue
    if not queue._heap:
        return None
    heapq.heappop(queue._heap)
    return "event_queue"


@register("desync_live_counter")
def desync_live_counter(machine) -> Optional[str]:
    """Bump the O(1) live counter past the real heap population."""
    machine.sim._queue._live += 1
    return "event_queue"


@register("corrupt_frame_counter")
def corrupt_frame_counter(machine) -> Optional[str]:
    """Make the free queue believe in one more free frame than exists."""
    frontend = getattr(machine.scheme, "frontend", None)
    if frontend is None:
        return None
    frontend.free_queue.num_free += 1
    return "frames"


@register("tlb_desync")
def tlb_desync(machine) -> Optional[str]:
    """Clear a frame's TLB-directory bits while a TLB still maps it."""
    frontend = getattr(machine.scheme, "frontend", None)
    tlbs = getattr(machine.scheme, "tlbs", None)
    if frontend is None or not tlbs:
        return None
    cpds = frontend.cpds
    for tlb in tlbs:
        for pte in tlb._l2.values():
            if pte.cached and 0 <= pte.page_frame_num < len(cpds):
                cpd = cpds[pte.page_frame_num]
                if cpd.valid and cpd.tlb_directory:
                    cpd.tlb_directory = 0
                    return "tlb_coherence"
    return None


@register("break_tlb_inclusion")
def break_tlb_inclusion(machine) -> Optional[str]:
    """Drop an L2 TLB entry whose translation is still in the L1."""
    tlbs = getattr(machine.scheme, "tlbs", None)
    if not tlbs:
        return None
    for tlb in tlbs:
        for vpn in tlb._l1:
            if vpn in tlb._l2:
                del tlb._l2[vpn]
                return "tlb_coherence"
    return None


@register("close_dram_row")
def close_dram_row(machine) -> Optional[str]:
    """Force a bank's row closed while its column timing is pending."""
    for attr in ("hbm", "ddr"):
        device = getattr(machine.scheme, attr, None)
        if device is None:
            continue
        for ch in device.channels:
            for bank in ch.banks:
                if bank.open_row is not None and bank.ready_at:
                    bank.open_row = None
                    return "dram_bank"
    return None


@register("corrupt_rob")
def corrupt_rob(machine) -> Optional[str]:
    """Drive a core's store-buffer occupancy negative."""
    for core in machine.cores:
        if not core.done:
            core.outstanding_stores = -1
            return "rob"
    return None


@register("inject_deadlock")
def inject_deadlock(machine) -> Optional[str]:
    """Schedule a self-perpetuating zero-delay event: the clock stops
    advancing and only the watchdog can end the run."""
    sim = machine.sim

    def _spin() -> None:
        sim.schedule(0, _spin)

    sim.schedule(0, _spin)
    return "forward_progress"
