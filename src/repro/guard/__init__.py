"""Runtime invariant checking, watchdog, crash bundles, fault injection.

Public surface:

* :class:`GuardConfig` / :class:`Guard` -- paranoid-mode runtime,
  attached via ``Machine.run(guard=...)`` or ``repro run --guard``;
* :class:`GuardError` / :class:`InvariantViolation` /
  :class:`DeadlockError` -- the typed failures a guarded run raises;
* :func:`as_guard` -- normalize ``True`` / config / guard arguments;
* ``repro.guard.bundle`` -- crash bundles + ``repro replay``;
* ``repro.guard.chaos`` -- test-only fault injection (imported lazily;
  name an injection in ``GuardConfig.chaos`` to arm it).
"""

from __future__ import annotations

from typing import Optional, Union

from repro.guard.core import Guard, GuardConfig
from repro.guard.errors import DeadlockError, GuardError, InvariantViolation

__all__ = [
    "Guard",
    "GuardConfig",
    "GuardError",
    "InvariantViolation",
    "DeadlockError",
    "as_guard",
]


def as_guard(
    guard: Union[None, bool, GuardConfig, Guard],
    run_config: Optional[dict] = None,
) -> Optional[Guard]:
    """Normalize the ``guard=`` argument accepted across the stack.

    ``None``/``False`` -> no guard; ``True`` -> default config;
    a :class:`GuardConfig` -> fresh :class:`Guard`; a :class:`Guard` is
    passed through (its ``run_config`` is filled in if missing).
    """
    if guard is None or guard is False:
        return None
    if isinstance(guard, Guard):
        if guard.run_config is None and run_config is not None:
            guard.run_config = run_config
        return guard
    if isinstance(guard, GuardConfig):
        return Guard(guard, run_config=run_config)
    if guard is True:
        return Guard(GuardConfig(), run_config=run_config)
    raise TypeError(
        f"guard must be None, bool, GuardConfig, or Guard, "
        f"not {type(guard).__name__}"
    )
