"""The guard runtime: config, event hooks, watchdog, chaos hook.

A :class:`Guard` is attached to a :class:`~repro.engine.simulator.
Simulator` for one run.  The simulator's guarded dispatch loop calls
``before_event`` / ``after_event`` around every callback (duck-typed --
the engine never imports this package), which gives the guard:

* a bounded ring buffer of the last K dispatched events (for bundles),
* dispatch-time monotonicity checking and a same-cycle livelock counter,
* a check cadence: every ``check_interval`` events all registered
  component checkers run, then the forward-progress watchdog compares
  retirement and queue depth against a cycle horizon,
* a deterministic fault-injection point (``chaos`` in the config), so a
  chaos run is fully described by its :class:`GuardConfig` and can be
  replayed from a bundle.

Guards are strictly opt-in: with no guard attached the simulator takes
its unguarded fast loops and pays nothing.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, fields
from typing import Callable, List, Optional, Tuple

from repro.guard.checkers import CheckerEntry, build_checkers
from repro.guard.errors import DeadlockError, InvariantViolation


@dataclass(frozen=True)
class GuardConfig:
    """Knobs of one guarded run (serialized into crash bundles)."""

    check_interval: int = 2000  # events between full checker sweeps
    ring_size: int = 256  # dispatched events kept for the bundle
    deadlock_cycles: int = 2_000_000  # cycle horizon with no progress
    livelock_events: int = 100_000  # same-cycle events before livelock
    mshr_age_limit: int = 2_000_000  # cycles before an MSHR counts as leaked
    bundle_dir: Optional[str] = None  # None -> $REPRO_GUARD_BUNDLES/default
    write_bundle: bool = True
    # Fault injection (test-only; see repro.guard.chaos).  Naming an
    # injection here makes the corruption part of the run's config, which
    # is what lets `repro replay` reproduce a chaos crash from its bundle.
    chaos: Optional[str] = None
    chaos_at_event: int = 2000
    chaos_scheme: Optional[str] = None  # inject only into this scheme

    def to_dict(self) -> dict:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, d: dict) -> "GuardConfig":
        known = {f.name for f in fields(cls)}
        unknown = set(d) - known
        if unknown:
            raise ValueError(
                f"GuardConfig.from_dict: unknown keys {sorted(unknown)}"
            )
        return cls(**d)


class Guard:
    """Runtime state of one guarded run."""

    def __init__(self, config: Optional[GuardConfig] = None,
                 run_config: Optional[dict] = None):
        self.config = config if config is not None else GuardConfig()
        self.run_config = run_config
        self.machine = None
        self.ring: deque = deque(maxlen=self.config.ring_size)
        self.events_seen = 0
        self.checks_run = 0
        self.violations = 0  # bumped just before raising
        self._checkers: List[CheckerEntry] = []
        self._since_check = 0
        # Dispatch-time monotonicity / same-cycle livelock state.
        self._last_time = -1
        self._same_time_events = 0
        # Forward-progress watchdog state.
        self._progress_now = 0
        self._progress_insts = -1
        self._progress_pending = -1
        # Chaos injection state.
        self._chaos_pending = self.config.chaos
        self.chaos_applied: Optional[str] = None
        self.chaos_expected_checker: Optional[str] = None
        # Filled in by Machine.run when a guarded run dies.
        self.last_exception: Optional[BaseException] = None
        self.events_at_failure: Optional[int] = None
        # Last telemetry window (when the dead run was also observed).
        self.telemetry_window: Optional[dict] = None

    # -- lifecycle -----------------------------------------------------

    def install(self, machine) -> None:
        """Bind to a machine and discover its checkers."""
        self.machine = machine
        if (
            self.config.chaos_scheme is not None
            and machine.scheme.scheme_name != self.config.chaos_scheme
        ):
            self._chaos_pending = None  # chaos targets a different scheme
        self._checkers = build_checkers(machine, self.config)
        self._since_check = 0
        self._last_time = -1
        self._same_time_events = 0
        self._progress_now = machine.sim.now
        self._progress_insts = -1
        self._progress_pending = -1

    # -- per-event hooks (called from Simulator._run_guarded) ----------

    def before_event(self, time: int, seq: int,
                     callback: Callable[[], None]) -> None:
        self.events_seen += 1
        self.ring.append((time, seq, callback))
        last = self._last_time
        if time < last:
            self.violations += 1
            raise InvariantViolation(
                "event_queue",
                [f"dispatch time went backwards: t={time} after t={last}"],
                component="simulator",
                snapshot=self._snapshot(),
            )
        if time == last:
            self._same_time_events += 1
            if self._same_time_events > self.config.livelock_events:
                self.violations += 1
                raise DeadlockError(
                    self._stall_message(
                        f"simulation stalled (livelock): "
                        f"{self._same_time_events} consecutive events "
                        f"without the clock advancing past t={time}"
                    ),
                    snapshot=self._snapshot(),
                )
        else:
            self._same_time_events = 0
            self._last_time = time

    def after_event(self) -> None:
        if self._chaos_pending is not None and \
                self.events_seen >= self.config.chaos_at_event:
            self._apply_chaos()
            if self.chaos_applied is not None:
                # Sweep immediately: the corruption must be *detected*,
                # not crashed on (or healed) by subsequent simulation.
                self._since_check = 0
                self.check_now()
                return
        self._since_check += 1
        if self._since_check >= self.config.check_interval:
            self._since_check = 0
            self.check_now()

    # -- checks --------------------------------------------------------

    def check_now(self) -> None:
        """Run every registered checker, then the progress watchdog."""
        self.checks_run += 1
        for name, component, thunk in self._checkers:
            problems = thunk()
            if problems:
                self.violations += 1
                raise InvariantViolation(
                    name, problems, component=component,
                    snapshot=self._snapshot(),
                )
        self._check_progress()

    def _check_progress(self) -> None:
        machine = self.machine
        if machine is None:
            return
        sim = machine.sim
        insts = sum(core.inst_count for core in machine.cores)
        pending = sim.pending_events
        if (
            self._progress_insts < 0
            or insts != self._progress_insts
            or pending < self._progress_pending
        ):
            # Retirement advanced or the queue drained below its previous
            # low-water mark: that is forward progress.
            self._progress_insts = insts
            self._progress_pending = pending
            self._progress_now = sim.now
            return
        if sim.now - self._progress_now > self.config.deadlock_cycles:
            self.violations += 1
            raise DeadlockError(
                self._stall_message(
                    f"simulation stalled (no forward progress): no "
                    f"retirement and no net queue drain for "
                    f"{sim.now - self._progress_now} cycles "
                    f"(horizon {self.config.deadlock_cycles})"
                ),
                snapshot=self._snapshot(),
            )

    # -- chaos ---------------------------------------------------------

    def _apply_chaos(self) -> None:
        from repro.guard import chaos

        name = self._chaos_pending
        expected = chaos.apply_injection(name, self.machine)
        if expected is None:
            return  # state not injectable yet; retry next event
        self._chaos_pending = None
        self.chaos_applied = name
        self.chaos_expected_checker = expected

    # -- reporting -----------------------------------------------------

    def _snapshot(self) -> dict:
        machine = self.machine
        sim = machine.sim if machine is not None else None
        snap = {"events_seen": self.events_seen}
        if sim is not None:
            snap.update(
                now=sim.now,
                events_processed=sim.events_processed,
                pending_events=sim.pending_events,
            )
        return snap

    def _stall_message(self, headline: str) -> str:
        machine = self.machine
        lines = [headline]
        if machine is not None:
            lines.extend(progress_report(machine))
        return "\n".join(lines)

    def queue_head(self) -> Optional[Tuple[int, int, str]]:
        machine = self.machine
        if machine is None:
            return None
        return queue_head(machine.sim)

    def write_bundle(self, exc: BaseException):
        """Emit a diagnostic bundle; returns its path (or None)."""
        if not self.config.write_bundle:
            return None
        from repro.guard import bundle

        return bundle.write_bundle(self, exc, self.machine)


# ---------------------------------------------------------------------------
# Shared diagnostics (also used by Machine's stall report)
# ---------------------------------------------------------------------------

def callback_name(cb) -> str:
    """Readable label for an event callback (closures, partials, methods)."""
    qualname = getattr(cb, "__qualname__", None)
    if qualname:
        return qualname
    inner = getattr(cb, "func", None)  # functools.partial
    if inner is not None:
        return f"partial({callback_name(inner)})"
    return type(cb).__name__


def queue_head(sim) -> Optional[Tuple[int, int, str]]:
    """(time, seq, callback label) of the next live event, if any."""
    for entry in sim._queue._heap:
        if not entry[2].cancelled:
            return entry[0], entry[1], callback_name(entry[2].callback)
    return None


def progress_report(machine) -> List[str]:
    """Queue head + per-component one-liners for stall diagnostics."""
    sim = machine.sim
    lines = [
        f"  now={sim.now} events_processed={sim.events_processed} "
        f"pending={sim.pending_events}"
    ]
    head = queue_head(sim)
    if head is not None:
        lines.append(
            f"  queue head: t={head[0]} seq={head[1]} callback={head[2]}"
        )
    for component in sim.components:
        state = component.guard_state()
        if state:
            summary = " ".join(f"{k}={v}" for k, v in state.items())
            lines.append(f"  {component.name}: {summary}")
    return lines
