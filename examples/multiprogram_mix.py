#!/usr/bin/env python3
"""Multi-programmed mixes: a noisy neighbour on a shared DRAM cache.

The paper evaluates rate mode (every core runs the same program).  A
natural follow-up question for an OS-managed shared DC: what happens to
a cache-friendly tenant when an Excess-class stream moves in next door?
The fully-associative FIFO cache has no partitioning, so the stream's
fills march through the frame queue and evict the quiet tenant's pages
-- unless its translations are TLB-resident (shootdown avoidance doubles
as a small protection domain).

    python examples/multiprogram_mix.py
"""

from repro import build_machine, scaled_system
from repro.harness.reporting import format_table
from repro.workloads.presets import workload


def main() -> None:
    cfg = scaled_system(num_cores=4, dc_megabytes=64)

    def spec(name):
        return workload(name, dc_pages=cfg.dc_pages, num_cores=cfg.num_cores,
                        num_mem_ops=5000)

    scenarios = {
        "quiet (4x tc)": ["tc"] * 4,
        "one streamer (3x tc + cact)": ["tc", "tc", "tc", "cact"],
        "half streamers (2x tc + 2x cact)": ["tc", "tc", "cact", "cact"],
    }

    rows = []
    for label, names in scenarios.items():
        specs = [spec(n) for n in names]
        r = build_machine("nomad", cfg=cfg, specs=specs).run()
        tc_cores = [i for i, n in enumerate(names) if n == "tc"]
        rows.append(
            {
                "scenario": label,
                "tc_ipc_per_core": sum(r.per_core_ipc[i] for i in tc_cores)
                / len(tc_cores),
                "machine_ipc": r.ipc,
                "page_fills": r.page_fills,
                "tag_latency": r.tag_mgmt_latency,
            }
        )
        print(f"ran: {label}")

    print()
    print(format_table(rows, title="NOMAD under multi-programmed mixes"))
    print(
        "\nThe quiet tenant (tc) loses IPC as streaming neighbours churn\n"
        "the shared FIFO frame queue and contend for the front-end mutex\n"
        "-- the flip side of the fully-associative OS-managed design."
    )


if __name__ == "__main__":
    main()
