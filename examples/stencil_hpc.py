#!/usr/bin/env python3
"""HPC stencil sweep: when does the DRAM cache pay for itself?

Stencil codes (cactusADM, leslie3d, lbm) stream large grids with
temporal reuse beyond the SRAM hierarchy's reach.  Whether an OS-managed
DRAM cache helps depends on the ratio of *reused* accesses (served from
on-package HBM once cached) to *fill* traffic (each page still crosses
the off-package bus once).

This example builds custom stencil-style workloads with increasing
reuse and shows the crossover: below a reuse threshold the DDR-only
baseline wins (the cache just adds copy traffic); above it, NOMAD's
non-blocking fills convert the reuse into IPC.

    python examples/stencil_hpc.py
"""

from repro import WorkloadSpec, build_machine, scaled_system
from repro.harness.reporting import format_table


def stencil(reuse_frac: float, num_ops: int = 5000) -> WorkloadSpec:
    cfg = scaled_system()
    share = cfg.dc_pages // cfg.num_cores
    return WorkloadSpec(
        name=f"stencil-r{int(reuse_frac * 100)}",
        footprint_pages=int(2.5 * share),  # grid >> DC share
        mem_ratio=0.35,
        page_select="stream",
        mean_run_lines=64,  # full-page sweeps
        write_frac=0.2,
        dep_frac=0.1,
        reuse_frac=reuse_frac,
        reuse_window=1024,
        num_mem_ops=num_ops,
    )


def main() -> None:
    rows = []
    for reuse in (0.0, 0.3, 0.5, 0.7):
        spec = stencil(reuse)
        baseline = build_machine("baseline", spec=spec).run()
        nomad = build_machine("nomad", spec=spec).run()
        tdc = build_machine("tdc", spec=spec).run()
        rows.append(
            {
                "reuse_frac": reuse,
                "nomad_ipc_rel": nomad.speedup_over(baseline),
                "tdc_ipc_rel": tdc.speedup_over(baseline),
                "nomad_hbm_gbps": nomad.hbm_bandwidth_gbps,
                "nomad_ddr_gbps": nomad.ddr_bandwidth_gbps,
            }
        )
        print(f"ran reuse={reuse:.0%}")

    print()
    print(format_table(rows, title="Stencil reuse sweep: DRAM cache crossover"))
    print(
        "\nAt reuse=0 every byte crosses the off-package bus exactly once\n"
        "whether cached or not, so the cache cannot win; as reuse grows,\n"
        "re-accesses hit on-package HBM and NOMAD pulls ahead while the\n"
        "blocking TDC stays pinned by its miss-handling stalls."
    )


if __name__ == "__main__":
    main()
