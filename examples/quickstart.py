#!/usr/bin/env python3
"""Quickstart: run NOMAD against every baseline on one workload.

Builds the scaled 4-core machine, runs the cactusADM-like Excess-class
workload under each DRAM cache scheme, and prints the comparison the
paper's Fig. 9 makes: IPC relative to the DDR-only baseline, average DC
access time, and the stall breakdown.

    python examples/quickstart.py [workload] [mem_ops]
"""

import sys

from repro import build_machine
from repro.harness.reporting import format_table


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "cact"
    num_ops = int(sys.argv[2]) if len(sys.argv) > 2 else 6000

    print(f"workload={workload}, {num_ops} memory ops per core\n")
    results = {}
    for scheme in ("baseline", "tid", "tdc", "nomad", "ideal"):
        machine = build_machine(scheme, workload_name=workload, num_mem_ops=num_ops)
        results[scheme] = machine.run()
        print(f"  ran {scheme}")

    baseline = results["baseline"]
    rows = []
    for scheme, r in results.items():
        rows.append(
            {
                "scheme": scheme,
                "ipc": r.ipc,
                "ipc_rel_baseline": r.speedup_over(baseline),
                "dc_access_time": r.dc_access_time,
                "os_stall": r.os_stall_ratio,
                "ddr_gbps": r.ddr_bandwidth_gbps,
                "hbm_gbps": r.hbm_bandwidth_gbps,
            }
        )
    print()
    print(format_table(rows, title=f"DRAM cache schemes on '{workload}'"))

    nomad, tdc = results["nomad"], results["tdc"]
    print()
    print(
        f"NOMAD vs TDC: {nomad.ipc / tdc.ipc - 1:+.1%} IPC, "
        f"stalls {tdc.os_stall_ratio:.1%} -> {nomad.os_stall_ratio:.1%}, "
        f"tag mgmt latency {nomad.tag_mgmt_latency:.0f} cycles, "
        f"{nomad.buffer_hit_ratio:.0%} of data misses served from page copy buffers"
    )


if __name__ == "__main__":
    main()
