#!/usr/bin/env python3
"""Regenerate every paper table and figure in one go.

Runs the full experiment campaign (all 15 workloads, all schemes, all
sensitivity sweeps) and writes each table/figure as text to
``examples/output/``.  This is the long-form version of what the
benchmark suite asserts; expect ~10-20 minutes at the default trace
length.

    python examples/reproduce_paper.py [mem_ops_per_core]
"""

import pathlib
import sys
import time

from repro.harness import (
    experiment_fig02,
    experiment_fig07,
    experiment_fig09,
    experiment_fig10,
    experiment_fig11,
    experiment_fig12,
    experiment_fig13,
    experiment_fig14,
    experiment_fig15,
    experiment_fig16,
    experiment_summary,
    experiment_table1,
)
from repro.harness.reporting import format_table, render_series, rows_to_series
from repro.harness.runner import RunConfig

OUT = pathlib.Path(__file__).parent / "output"


def main() -> None:
    ops = int(sys.argv[1]) if len(sys.argv) > 1 else 6000
    base = RunConfig(scheme="ideal", workload="cact", num_mem_ops=ops)
    OUT.mkdir(exist_ok=True)

    campaign = [
        ("table1", lambda: format_table(
            experiment_table1(base), title="Table I")),
        ("fig02", lambda: format_table(
            experiment_fig02(base), title="Fig. 2: TDC/TiD")),
        ("fig07", lambda: format_table(
            [dict(scheme=s, **c) for s, c in experiment_fig07(base).items()],
            title="Fig. 7: effective access latency")),
        ("fig09", lambda: format_table(
            experiment_fig09(base), title="Fig. 9: IPC + DC access time")),
        ("fig10", lambda: format_table(
            experiment_fig10(base), title="Fig. 10: HBM bandwidth breakdown")),
        ("fig11", lambda: format_table(
            experiment_fig11(base), title="Fig. 11: stalls + tag latency")),
        ("fig12", lambda: render_series(
            rows_to_series(experiment_fig12(base), "class", "pcshrs",
                           "ipc_rel_baseline"),
            x_label="pcshrs", title="Fig. 12: IPC vs #PCSHRs")),
        ("fig13", lambda: render_series(
            rows_to_series(experiment_fig13(base), "cores", "pcshrs",
                           "ipc_rel_32"),
            x_label="pcshrs", title="Fig. 13: IPC vs #PCSHRs per core count")),
        ("fig14", lambda: format_table(
            experiment_fig14(base), title="Fig. 14: cact vs libq contention")),
        ("fig15", lambda: format_table(
            experiment_fig15(base), title="Fig. 15: area-optimized designs")),
        ("fig16", lambda: format_table(
            experiment_fig16(base), title="Fig. 16: centralized vs distributed")),
        ("summary", lambda: format_table(
            [{"metric": k, "value": v} for k, v in experiment_summary(base).items()],
            title="Section IV-B5 summary")),
    ]

    for name, produce in campaign:
        start = time.time()
        text = produce()
        (OUT / f"{name}.txt").write_text(text + "\n")
        print(f"[{time.time() - start:6.1f}s] {name} -> examples/output/{name}.txt")
        print(text)
        print()


if __name__ == "__main__":
    main()
