#!/usr/bin/env python3
"""Graph analytics on a heterogeneous memory system.

The paper's intro motivates DRAM caches with applications whose working
sets dwarf on-package DRAM.  Graph workloads (GAPBS) are the canonical
stress: bfs touches ~1 KB per page (bad for 4 KB caching granularity),
sssp streams with almost no locality, and pr hammers a hot vertex set.

This example runs the three GAPBS-like presets under TDC and NOMAD and
shows where tag-data decoupling pays off -- and where a page-granular
cache fundamentally struggles (bfs's sub-page locality, Section IV-B2).

    python examples/graph_analytics.py
"""

from repro import build_machine
from repro.harness.reporting import format_table
from repro.workloads.presets import PRESETS

GRAPH_WORKLOADS = ("bfs", "sssp", "pr")


def main() -> None:
    rows = []
    for wl in GRAPH_WORKLOADS:
        preset = PRESETS[wl]
        baseline = build_machine("baseline", workload_name=wl, num_mem_ops=6000).run()
        tdc = build_machine("tdc", workload_name=wl, num_mem_ops=6000).run()
        nomad = build_machine("nomad", workload_name=wl, num_mem_ops=6000).run()
        rows.append(
            {
                "workload": wl,
                "class": preset.klass,
                "locality_lines_per_page": preset.mean_run_lines,
                "tdc_ipc_rel": tdc.speedup_over(baseline),
                "nomad_ipc_rel": nomad.speedup_over(baseline),
                "tdc_stall": tdc.os_stall_ratio,
                "nomad_stall": nomad.os_stall_ratio,
            }
        )
        print(f"ran {wl}")

    print()
    print(format_table(rows, title="Graph workloads: blocking vs non-blocking"))
    print(
        "\nReading the table: sssp (Excess-class, streaming) stalls the\n"
        "blocking TDC hard; NOMAD's PCSHRs absorb the misses.  bfs's\n"
        "sub-page (~1 KB) locality limits what any 4 KB-granular cache\n"
        "can do, yet NOMAD still tolerates its DC tag misses."
    )


if __name__ == "__main__":
    main()
