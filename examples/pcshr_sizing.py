#!/usr/bin/env python3
"""Sizing the NOMAD back-end: PCSHRs and page copy buffers.

An architect provisioning NOMAD must pick the PCSHR count (concurrency
of outstanding page copies) and the page-copy-buffer count (the area
cost: 4 KB of SRAM each).  This example reproduces the paper's sizing
methodology (Figs. 12, 14, 15) on one steady and one bursty workload
and prints a recommendation table.

    python examples/pcshr_sizing.py
"""

from repro import NomadConfig, build_machine
from repro.harness.reporting import format_table

WORKLOADS = ("cact", "libq")  # steady high-RMHB vs bursty


def run(wl: str, pcshrs: int, buffers: int):
    cfg = NomadConfig(num_pcshrs=pcshrs, num_copy_buffers=buffers)
    return build_machine("nomad", workload_name=wl, num_mem_ops=5000,
                         nomad_cfg=cfg).run()


def main() -> None:
    rows = []
    for wl in WORKLOADS:
        for pcshrs in (2, 8, 32):
            r = run(wl, pcshrs, pcshrs)
            rows.append(
                {
                    "workload": wl,
                    "pcshrs": pcshrs,
                    "buffers": pcshrs,
                    "ipc": r.ipc,
                    "tag_latency": r.tag_mgmt_latency,
                    "stall": r.os_stall_ratio,
                }
            )
        # The area-optimized point: many PCSHRs, few buffers.
        r = run(wl, 32, 8)
        rows.append(
            {
                "workload": wl, "pcshrs": 32, "buffers": 8,
                "ipc": r.ipc, "tag_latency": r.tag_mgmt_latency,
                "stall": r.os_stall_ratio,
            }
        )
        print(f"swept {wl}")

    print()
    print(format_table(rows, title="Back-end sizing sweep"))
    print(
        "\nRule of thumb from the paper (and visible above): ~8 PCSHRs\n"
        "saturate a steady Excess workload (the off-package bus becomes\n"
        "the limit), bursty workloads want more PCSHRs to absorb spikes,\n"
        "and buffers -- the area cost -- need not scale with PCSHRs."
    )


if __name__ == "__main__":
    main()
