"""Fig. 10: on-package DRAM bandwidth breakdown + row-buffer hit rates.

The HW-based scheme spends a visible share of HBM bandwidth on metadata;
OS-managed schemes spend none.
"""

from conftest import BENCH_BASE, emit

from repro.harness.experiments import experiment_fig10
from repro.harness.reporting import format_table

WLS = ["cact", "sssp", "les", "bfs", "mcf", "pr", "tc"]


def test_fig10(benchmark):
    rows = benchmark.pedantic(
        lambda: experiment_fig10(BENCH_BASE, workloads=WLS),
        rounds=1, iterations=1,
    )
    emit("fig10", format_table(
        rows,
        title="Fig. 10: HBM bandwidth usage breakdown + row buffer hit rate",
    ))
    tid = {r["workload"]: r for r in rows if r["scheme"] == "tid"}
    nomad = {r["workload"]: r for r in rows if r["scheme"] == "nomad"}
    for wl in WLS:
        # TiD always pays metadata bandwidth; OS-managed schemes never do.
        assert tid[wl]["metadata_frac"] > 0.05, wl
        assert nomad[wl]["metadata_frac"] == 0.0, wl
    # Streaming workloads keep high row-buffer hit rates under NOMAD.
    assert nomad["cact"]["row_hit_rate"] > 0.6
    # Fill traffic is a visible share of HBM usage for Excess workloads.
    assert nomad["cact"]["fill_frac"] > 0.1
