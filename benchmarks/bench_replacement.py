"""Replacement-policy study (Section III-C2).

The paper's justification for FIFO: a fully-associative FIFO DRAM cache
sees fewer misses than a 16-way set-associative LRU one (~23% on their
workloads).  This bench replays every preset's page stream against both
organizations and reports the per-workload miss rates.
"""

from conftest import BENCH_BASE, emit

from repro.analysis.replacement_study import compare_replacement
from repro.harness.reporting import format_table
from repro.workloads.presets import PRESETS, workload


def test_replacement_study(benchmark):
    def _all():
        rows = []
        for name in PRESETS:
            spec = workload(name, dc_pages=16384, num_cores=4,
                            num_mem_ops=20_000)
            cmp = compare_replacement(spec, capacity_pages=4096, ways=16)
            rows.append(
                {
                    "workload": name,
                    "fifo_full_assoc_mr": cmp.fifo_miss_rate,
                    "setassoc_lru_mr": cmp.lru_miss_rate,
                    "miss_reduction": cmp.miss_reduction,
                }
            )
        return rows

    rows = benchmark.pedantic(_all, rounds=1, iterations=1)
    emit("replacement", format_table(
        rows, title="FIFO fully-associative vs 16-way LRU (page miss rates)"
    ))
    # The fully-associative FIFO organization must be competitive on
    # average (the paper's argument for adopting it).
    mean_reduction = sum(r["miss_reduction"] for r in rows) / len(rows)
    assert mean_reduction > -0.05
