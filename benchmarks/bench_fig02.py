"""Fig. 2: TDC IPC relative to TiD for six high-MPMS benchmarks.

The motivating result: the blocking OS-managed scheme loses to the
HW-based scheme for high-RMHB (Excess) workloads and wins for low-RMHB
(Loose/Few) ones, with the crossover between the classes.
"""

from conftest import BENCH_BASE, emit

from repro.harness.experiments import experiment_fig02
from repro.harness.reporting import format_table


def test_fig02(benchmark):
    rows = benchmark.pedantic(
        lambda: experiment_fig02(BENCH_BASE), rounds=1, iterations=1
    )
    emit("fig02", format_table(
        rows, title="Fig. 2: TDC IPC normalized to TiD (descending RMHB)"
    ))
    by_wl = {r["workload"]: r["tdc_over_tid"] for r in rows}
    # Low-RMHB workloads: TDC wins (paper: pr, bc, mcf > 1; our mcf is
    # borderline ~1.0 because its dependence-serialized loads blunt both
    # schemes equally).
    assert by_wl["pr"] > 1.2
    assert by_wl["bc"] > 1.0
    assert by_wl["mcf"] > 0.9
    # The trend falls with RMHB: the Excess side sits well below the
    # Few side (the crossover of Fig. 2).
    excess_mean = (by_wl["cact"] + by_wl["sssp"] + by_wl["bwav"]) / 3
    assert excess_mean < by_wl["pr"]
    assert min(by_wl["cact"], by_wl["sssp"], by_wl["bwav"]) < 1.05
