"""Shared benchmark configuration.

Every benchmark uses the same scaled machine (4 cores, 64 MB DC) and
trace length so the in-process result cache is shared across figures
(Fig. 9, 10 and 11 reuse the same scheme x workload runs, exactly as the
paper derives them from one simulation campaign).

The whole session additionally runs against a persistent
:class:`repro.campaign.ResultStore` under ``benchmarks/results/.store``,
so re-running the figure suite (or any subset of it) after the first
pass is served from disk instead of re-simulating.  Delete that
directory -- or bump ``repro.__version__`` -- to force fresh runs.

Results are printed (run with ``-s`` to see them) and written to
``benchmarks/results/``.
"""

import pathlib

import pytest

from repro.campaign import ResultStore
from repro.harness.runner import RunConfig, cache_stats, set_result_store

# One standard campaign configuration for all figures.
BENCH_OPS = 6000
BENCH_BASE = RunConfig(
    scheme="ideal",
    workload="cact",
    num_mem_ops=BENCH_OPS,
    num_cores=4,
    dc_megabytes=64,
)

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
STORE_DIR = RESULTS_DIR / ".store"


def emit(name: str, text: str) -> None:
    """Print and persist one figure's output."""
    print()
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


@pytest.fixture
def base():
    return BENCH_BASE


@pytest.fixture(scope="session", autouse=True)
def _campaign_store():
    """Serve repeated figure runs from disk across benchmark sessions."""
    store = ResultStore(STORE_DIR)
    prev = set_result_store(store)
    yield store
    set_result_store(prev)
    print()
    caches = cache_stats()
    print(
        f"campaign caches: memo {caches['memo']}, "
        f"snapshot {caches['snapshot']}, trace {caches['trace']}, "
        f"store {store.stats()}"
    )
