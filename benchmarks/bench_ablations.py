"""Ablations of NOMAD's design choices (DESIGN.md section 6).

Not a paper figure: these isolate the mechanisms behind the headline
numbers -- critical-data-first scheduling, serving data misses from the
page copy buffer, and the background (proactive) eviction daemon.
"""

from conftest import BENCH_BASE, emit

from repro.config.schemes import NomadConfig
from repro.harness.reporting import format_table
from repro.harness.runner import run_workload

WL = "cact"


def _run(tag, **cfg_kw):
    cfg = NomadConfig(**cfg_kw)
    res = run_workload(BENCH_BASE.with_(scheme="nomad", workload=WL,
                                        nomad_cfg=cfg))
    return {
        "variant": tag,
        "ipc": res.ipc,
        "dc_access_time": res.dc_access_time,
        "buffer_hit_ratio": res.buffer_hit_ratio,
        "tag_latency": res.tag_mgmt_latency,
    }


def test_ablations(benchmark):
    def _all():
        return [
            _run("full"),
            _run("no-critical-data-first", critical_data_first=False),
            _run("no-buffer-service", serve_from_copy_buffer=False),
            _run("no-mutex (upper bound)", frontend_mutex=False),
        ]

    rows = benchmark.pedantic(_all, rounds=1, iterations=1)
    emit("ablations", format_table(rows, title="NOMAD design ablations (cact)"))
    by = {r["variant"]: r for r in rows}
    full = by["full"]

    # Critical-data-first: the demanded sub-block arrives first, so
    # disabling it slows DC access (more sub-entry waits).
    assert (by["no-critical-data-first"]["dc_access_time"]
            >= full["dc_access_time"] * 0.95)

    # Serving from the copy buffer is a large part of the win.
    assert by["no-buffer-service"]["dc_access_time"] > full["dc_access_time"]
    assert by["no-buffer-service"]["ipc"] <= full["ipc"] * 1.02

    # The frame-management mutex costs some tag latency.
    assert by["no-mutex (upper bound)"]["tag_latency"] <= full["tag_latency"]
