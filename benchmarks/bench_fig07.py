"""Fig. 7: effective DC access latency per scheme and (TLB, tag) case."""

from conftest import BENCH_BASE, emit

from repro.harness.experiments import experiment_fig07
from repro.harness.reporting import format_table


def test_fig07(benchmark):
    table = benchmark.pedantic(
        lambda: experiment_fig07(BENCH_BASE), rounds=1, iterations=1
    )
    rows = [dict(scheme=s, **cases) for s, cases in table.items()]
    emit("fig07", format_table(
        rows, title="Fig. 7: effective access latency (cycles, unloaded)"
    ))
    # (hit,hit): OS-managed near-ideal; TiD pays the in-DRAM tag read.
    assert table["nomad"]["hit_hit"] <= table["ideal"]["hit_hit"] + 2
    assert table["tid"]["hit_hit"] > table["nomad"]["hit_hit"]
    # (miss,miss): blocking TDC pays the whole page copy; the
    # non-blocking schemes hide it via critical-data-first.
    assert table["tdc"]["miss_miss"] > 2 * table["nomad"]["miss_miss"]
    assert table["tdc"]["miss_miss"] > 2 * table["tid"]["miss_miss"]
