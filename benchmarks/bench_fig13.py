"""Fig. 13: Excess-class IPC vs #PCSHRs for increasing core counts.

Since the off-package memory bounds performance beyond ~8 PCSHRs, more
cores do not require proportionally more PCSHRs.
"""

from conftest import BENCH_BASE, emit

from repro.harness.experiments import experiment_fig13
from repro.harness.reporting import render_series, rows_to_series


def test_fig13(benchmark):
    rows = benchmark.pedantic(
        lambda: experiment_fig13(
            BENCH_BASE, core_counts=(2, 4, 8), pcshr_counts=(2, 4, 8, 16, 32),
            workloads=("cact",),
        ),
        rounds=1, iterations=1,
    )
    emit("fig13", render_series(
        rows_to_series(rows, "cores", "pcshrs", "ipc_rel_32"),
        x_label="pcshrs",
        title="Fig. 13: Excess-class IPC vs #PCSHRs (normalized to 32)",
    ))
    by = {(r["cores"], r["pcshrs"]): r["ipc_rel_32"] for r in rows}
    for cores in (2, 4, 8):
        # Monotone-ish rise to saturation...
        assert by[(cores, 8)] > by[(cores, 2)] * 0.98
        # ...and 8 PCSHRs already deliver near-max performance.
        assert by[(cores, 8)] > 0.80, (cores, by[(cores, 8)])
