"""Fig. 15: area-optimized (n PCSHRs, m page copy buffers) designs.

For bursty workloads, growing the PCSHR count reduces tag-management
latency even when the (area-dominant) page copy buffer count stays
fixed: the interface unblocks once a PCSHR is available, while copies
queue for buffers in the background.
"""

from conftest import BENCH_BASE, emit

from repro.harness.experiments import experiment_fig15
from repro.harness.reporting import format_table

COMBOS = ((8, 8), (16, 8), (32, 8), (32, 16), (32, 32))


def test_fig15(benchmark):
    rows = benchmark.pedantic(
        lambda: experiment_fig15(BENCH_BASE, combos=COMBOS,
                                 workloads=("libq", "gems")),
        rounds=1, iterations=1,
    )
    emit("fig15", format_table(
        rows, title="Fig. 15: (n PCSHRs, m buffers) for bursty workloads"
    ))
    by = {(r["workload"], r["pcshrs"], r["buffers"]): r for r in rows}
    for wl in ("libq", "gems"):
        # More PCSHRs at fixed buffers reduce tag-management latency.
        assert (by[(wl, 32, 8)]["tag_latency"]
                <= by[(wl, 8, 8)]["tag_latency"] * 1.05), wl
        # Scaling buffers up to match PCSHRs changes little (the paper's
        # area-optimization argument).
        full = by[(wl, 32, 32)]["ipc_rel_baseline"]
        lean = by[(wl, 32, 8)]["ipc_rel_baseline"]
        assert lean > 0.85 * full, wl
