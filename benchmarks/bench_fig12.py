"""Fig. 12: per-class IPC and off-package bandwidth vs #PCSHRs.

Performance rises with PCSHRs until miss-handling bandwidth saturates;
the Excess class saturates around 8, Loose/Few need only 1-2.
"""

from conftest import BENCH_BASE, emit

from repro.harness.experiments import experiment_fig12
from repro.harness.reporting import format_table, rows_to_series, render_series


def test_fig12(benchmark):
    rows = benchmark.pedantic(
        lambda: experiment_fig12(
            BENCH_BASE, pcshr_counts=(1, 2, 4, 8, 16, 32),
            workloads_per_class=1,
        ),
        rounds=1, iterations=1,
    )
    emit("fig12", render_series(
        rows_to_series(rows, "class", "pcshrs", "ipc_rel_baseline"),
        x_label="pcshrs",
        title="Fig. 12: per-class IPC relative to baseline vs #PCSHRs",
    ))
    by = {(r["class"], r["pcshrs"]): r for r in rows}

    # Excess: more PCSHRs help up to ~8, then the off-package memory
    # becomes the bottleneck.
    assert by[("excess", 8)]["ipc_rel_baseline"] > by[("excess", 1)]["ipc_rel_baseline"]
    gain_8_32 = (by[("excess", 32)]["ipc_rel_baseline"]
                 / by[("excess", 8)]["ipc_rel_baseline"])
    assert gain_8_32 < 1.25, "beyond 8 PCSHRs gains should be marginal"

    # Few-class workloads are insensitive: one PCSHR is enough.
    few_1 = by[("few", 1)]["ipc_rel_baseline"]
    few_32 = by[("few", 32)]["ipc_rel_baseline"]
    assert few_32 < 1.15 * few_1

    # Off-package bandwidth consumption grows with PCSHRs for Excess.
    assert by[("excess", 8)]["ddr_gbps"] >= by[("excess", 1)]["ddr_gbps"]
