"""Fig. 9: IPC relative to baseline + average DC access time.

The headline evaluation: all 15 workloads x {TiD, TDC, NOMAD, Ideal}.
"""

from conftest import BENCH_BASE, emit

from repro.harness.experiments import experiment_fig09
from repro.harness.reporting import format_table
from repro.workloads.presets import workloads_in_class


def test_fig09(benchmark):
    rows = benchmark.pedantic(
        lambda: experiment_fig09(BENCH_BASE), rounds=1, iterations=1
    )
    emit("fig09_ipc", format_table(
        rows,
        columns=["workload", "paper_class", "tid_ipc_rel", "tdc_ipc_rel",
                 "nomad_ipc_rel", "ideal_ipc_rel"],
        title="Fig. 9 (top): IPC relative to baseline",
    ))
    emit("fig09_dct", format_table(
        rows,
        columns=["workload", "paper_class", "tid_dc_access_time",
                 "tdc_dc_access_time", "nomad_dc_access_time",
                 "ideal_dc_access_time"],
        title="Fig. 9 (bottom): average DC access time (cycles)",
    ))
    by = {r["workload"]: r for r in rows}

    for wl, r in by.items():
        # Ideal is the upper bound of the OS-managed family.
        assert r["ideal_ipc_rel"] >= r["tdc_ipc_rel"] * 0.95, wl
        assert r["ideal_ipc_rel"] >= r["nomad_ipc_rel"] * 0.95, wl
        # NOMAD never loses to the blocking scheme.
        assert r["nomad_ipc_rel"] >= r["tdc_ipc_rel"] * 0.95, wl
        # OS-managed access time beats tags-in-DRAM.
        assert r["nomad_dc_access_time"] < r["tid_dc_access_time"], wl

    # NOMAD approaches Ideal for Loose/Few workloads.
    for wl in workloads_in_class("few"):
        assert by[wl]["nomad_ipc_rel"] > 0.85 * by[wl]["ideal_ipc_rel"], wl

    # For the Excess class the blocking scheme gives up most of the
    # ideal gain; NOMAD recovers a large share of it.
    for wl in workloads_in_class("excess"):
        r = by[wl]
        assert r["nomad_ipc_rel"] > r["tdc_ipc_rel"] * 1.05, wl
