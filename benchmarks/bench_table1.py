"""Table I: workload characteristics (RMHB, LLC MPMS, class assignment).

Regenerates the paper's workload-characterization table under the
unthrottled OS-managed configuration and checks the class structure.
"""

from conftest import BENCH_BASE, emit

from repro.harness.experiments import experiment_table1
from repro.harness.reporting import format_table


def test_table1(benchmark):
    rows = benchmark.pedantic(
        lambda: experiment_table1(BENCH_BASE), rounds=1, iterations=1
    )
    emit("table1", format_table(
        rows,
        columns=["workload", "paper_class", "measured_class", "rmhb_gbps",
                 "llc_mpms"],
        title="Table I: workload characteristics (measured)",
    ))
    # Shape claim: every workload lands in its paper class.
    matches = sum(r["paper_class"] == r["measured_class"] for r in rows)
    assert matches >= 13, f"only {matches}/15 class assignments match"
    # RMHB ordering puts the Excess class on top.
    assert {r["workload"] for r in rows[:3]} == {"cact", "bwav", "sssp"}
