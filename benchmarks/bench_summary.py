"""Section IV-B5 headline numbers: NOMAD vs TDC and TiD.

Paper: +16.7% IPC over TDC, +25.5% over TiD, -76.1% stall cycles vs TDC,
91.6% of data misses served from page copy buffers.
"""

from conftest import BENCH_BASE, emit

from repro.harness.experiments import experiment_summary
from repro.harness.reporting import format_table


def test_summary(benchmark):
    s = benchmark.pedantic(
        lambda: experiment_summary(BENCH_BASE), rounds=1, iterations=1
    )
    rows = [
        {"metric": "IPC gain over TDC", "measured": s["ipc_gain_over_tdc"],
         "paper": s["paper_ipc_gain_over_tdc"]},
        {"metric": "IPC gain over TiD", "measured": s["ipc_gain_over_tid"],
         "paper": s["paper_ipc_gain_over_tid"]},
        {"metric": "stall reduction vs TDC",
         "measured": s["stall_reduction_vs_tdc"],
         "paper": s["paper_stall_reduction_vs_tdc"]},
        {"metric": "copy-buffer hit ratio", "measured": s["buffer_hit_ratio"],
         "paper": s["paper_buffer_hit_ratio"]},
    ]
    emit("summary", format_table(rows, title="Section IV-B5 summary claims"))
    assert s["ipc_gain_over_tdc"] > 0.05
    assert s["ipc_gain_over_tid"] > 0.05
    assert s["stall_reduction_vs_tdc"] > 0.40
    assert s["buffer_hit_ratio"] > 0.30
