"""Fig. 16: centralized vs distributed back-ends.

FIFO frame allocation spreads page-copy commands uniformly across
per-channel back-ends, so both designs perform alike.
"""

from conftest import BENCH_BASE, emit

from repro.harness.experiments import experiment_fig16
from repro.harness.reporting import format_table


def test_fig16(benchmark):
    rows = benchmark.pedantic(
        lambda: experiment_fig16(BENCH_BASE, pcshr_counts=(4, 8, 16, 32),
                                 workloads=("cact", "sssp")),
        rounds=1, iterations=1,
    )
    emit("fig16", format_table(
        rows, title="Fig. 16: centralized vs distributed back-ends"
    ))
    cen = {r["pcshrs"]: r for r in rows if r["topology"] == "centralized"}
    dist = {r["pcshrs"]: r for r in rows if r["topology"] == "distributed"}
    for n in (8, 16, 32):
        ratio = dist[n]["ipc_rel_baseline"] / cen[n]["ipc_rel_baseline"]
        assert 0.8 < ratio < 1.25, (n, ratio)
