"""Fig. 14: steady (cact) vs bursty (libq) PCSHR contention.

Bursty workloads suffer more PCSHR contention: their tag-management
latency keeps improving up to 32 PCSHRs, while the steady high-RMHB
workload saturates earlier.
"""

from conftest import BENCH_BASE, emit

from repro.harness.experiments import experiment_fig14
from repro.harness.reporting import format_table


def test_fig14(benchmark):
    rows = benchmark.pedantic(
        lambda: experiment_fig14(
            BENCH_BASE, pcshr_counts=(1, 2, 4, 8, 16, 32),
            workloads=("cact", "libq"),
        ),
        rounds=1, iterations=1,
    )
    emit("fig14", format_table(
        rows, title="Fig. 14: stall rate + tag mgmt latency vs #PCSHRs"
    ))
    by = {(r["workload"], r["pcshrs"]): r for r in rows}
    # Few PCSHRs hurt both: latency falls as PCSHRs grow.
    for wl in ("cact", "libq"):
        assert by[(wl, 1)]["tag_latency"] > by[(wl, 32)]["tag_latency"], wl
        assert by[(wl, 32)]["tag_latency"] >= 400
    # Both see falling stall rates with more PCSHRs.
    for wl in ("cact", "libq"):
        assert by[(wl, 32)]["stall_ratio"] <= by[(wl, 1)]["stall_ratio"], wl
