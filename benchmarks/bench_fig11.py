"""Fig. 11: application stall-cycle ratios + tag management latency.

TDC's blocking stalls fall from ~tens of percent (Excess) to a few
percent (Few); NOMAD cuts them by a large factor at the cost of a
somewhat higher tag-management latency (mutex + PCSHR contention).
"""

from conftest import BENCH_BASE, emit

from repro.harness.experiments import experiment_fig11
from repro.harness.reporting import format_table
from repro.workloads.presets import workloads_in_class


def test_fig11(benchmark):
    rows = benchmark.pedantic(
        lambda: experiment_fig11(BENCH_BASE), rounds=1, iterations=1
    )
    emit("fig11", format_table(
        rows, title="Fig. 11: stall ratios and tag management latency"
    ))
    by = {r["workload"]: r for r in rows}

    # NOMAD reduces stalls for every workload with meaningful stalls.
    reductions = []
    for wl, r in by.items():
        if r["tdc_stall_ratio"] > 0.05:
            assert r["nomad_stall_ratio"] < r["tdc_stall_ratio"], wl
            reductions.append(1 - r["nomad_stall_ratio"] / r["tdc_stall_ratio"])
    mean_reduction = sum(reductions) / len(reductions)
    # Paper: 76.1% average stall-cycle reduction.
    assert mean_reduction > 0.45, f"stall reduction only {mean_reduction:.0%}"

    # TDC stalls scale with RMHB class.
    excess = sum(by[w]["tdc_stall_ratio"] for w in workloads_in_class("excess")) / 3
    few = sum(by[w]["tdc_stall_ratio"] for w in workloads_in_class("few")) / 4
    assert excess > 4 * few

    # TDC tag latency is flat 400; NOMAD >= 400 and grows with contention.
    for wl, r in by.items():
        if r["tdc_tag_latency"]:
            assert r["tdc_tag_latency"] == 400, wl
        if r["nomad_tag_latency"]:
            assert r["nomad_tag_latency"] >= 400, wl
    assert by["cact"]["nomad_tag_latency"] > 400
