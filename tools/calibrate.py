"""Calibration helper: measure RMHB/MPMS of the current presets under
the unthrottled configuration, plus the scheme ordering on key loads."""
import sys
from repro.harness import experiment_table1, format_table
from repro.harness.runner import RunConfig, clear_cache

if __name__ == "__main__":
    ops = int(sys.argv[1]) if len(sys.argv) > 1 else 4000
    rows = experiment_table1(RunConfig(scheme="unthrottled", workload="cact", num_mem_ops=ops))
    print(format_table(rows, title="Table I"))
    print("match:", sum(r["paper_class"] == r["measured_class"] for r in rows), "/", len(rows))
