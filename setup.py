"""Legacy setup shim: the environment has no `wheel` package, so pip's
PEP 517 editable path (which builds a wheel) fails; this enables the
classic `setup.py develop` editable install."""

from setuptools import setup

setup()
